// Round-trip test for write_json: the emitted document must parse with a
// strict (if minimal) JSON grammar, expose every schema field, and contain
// only finite numbers.  Guards the "machine-readable output" contract that
// downstream plotting scripts rely on.
#include "sim/report.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "sim/experiment.h"

namespace edm::sim {
namespace {

// ----------------------------------------------------------- mini parser
// Just enough JSON for our own output: objects, arrays, strings (no
// unicode escapes), numbers, true/false/null.  Throws on anything else.

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v;
  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::shared_ptr<JsonValue> parse() {
    auto value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::shared_ptr<JsonValue> parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return make(parse_string());
      case 't':
        parse_literal("true");
        return make(true);
      case 'f':
        parse_literal("false");
        return make(false);
      case 'n':
        parse_literal("null");
        return make(nullptr);
      default:
        return make(parse_number());
    }
  }

  template <typename T>
  std::shared_ptr<JsonValue> make(T&& value) {
    auto v = std::make_shared<JsonValue>();
    v->v = std::forward<T>(value);
    return v;
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    std::size_t used = 0;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::stod(token, &used);
    if (used != token.size()) fail("malformed number: " + token);
    return value;
  }

  std::shared_ptr<JsonValue> parse_object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return make(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return make(std::move(out));
    }
  }

  std::shared_ptr<JsonValue> parse_array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return make(std::move(out));
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return make(std::move(out));
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void check_all_numbers_finite(const JsonValue& v, const std::string& path) {
  if (v.is_number()) {
    EXPECT_TRUE(std::isfinite(v.number())) << path;
  } else if (v.is_array()) {
    for (std::size_t i = 0; i < v.array().size(); ++i) {
      check_all_numbers_finite(*v.array()[i],
                               path + "[" + std::to_string(i) + "]");
    }
  } else if (v.is_object()) {
    for (const auto& [key, child] : v.object()) {
      check_all_numbers_finite(*child, path + "." + key);
    }
  }
}

const JsonValue& field(const JsonValue& obj, const std::string& key) {
  const auto it = obj.object().find(key);
  EXPECT_NE(it, obj.object().end()) << "missing field: " << key;
  if (it == obj.object().end()) {
    throw std::runtime_error("missing field: " + key);
  }
  return *it->second;
}

// ------------------------------------------------------------- the tests

std::shared_ptr<JsonValue> parsed_result(bool with_telemetry) {
  ExperimentConfig cfg;
  cfg.trace_name = "home02";
  cfg.scale = 0.004;
  cfg.num_osds = 8;
  cfg.policy = core::PolicyKind::kHdf;
  if (with_telemetry) {
    cfg.telemetry.trace_enabled = true;
    cfg.telemetry.metrics_enabled = true;
    cfg.telemetry.sample_interval_us = 700'000;
  }
  const RunResult r = run_experiment(cfg);
  std::ostringstream os;
  write_json(r, os);
  return JsonParser(os.str()).parse();
}

TEST(JsonRoundTrip, ParsesAndExposesSchemaFields) {
  const auto doc = parsed_result(/*with_telemetry=*/false);
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(std::get<std::string>(field(*doc, "schema").v),
            "edm-run-result/4");
  const JsonValue& summary = field(*doc, "summary");
  field(summary, "throughput_ops_per_sec");
  field(summary, "completed_ops");
  field(summary, "makespan_us");
  field(summary, "erase_rsd");
  const JsonValue& migration = field(*doc, "migration");
  field(migration, "moved_objects");
  EXPECT_TRUE(field(*doc, "per_osd").is_array());
  EXPECT_EQ(field(*doc, "per_osd").array().size(), 8u);
  EXPECT_TRUE(field(*doc, "timeline").is_array());
  check_all_numbers_finite(*doc, "$");
}

TEST(JsonRoundTrip, TelemetrySectionAlwaysPresent) {
  const auto doc = parsed_result(/*with_telemetry=*/false);
  const JsonValue& tel = field(*doc, "telemetry");
  EXPECT_EQ(field(tel, "enabled").number(), 0.0);
  EXPECT_TRUE(field(tel, "counters").is_object());
  EXPECT_TRUE(field(tel, "counters").object().empty());
  EXPECT_TRUE(field(tel, "gauges").is_object());
  EXPECT_TRUE(field(tel, "histograms").is_object());
}

TEST(JsonRoundTrip, TelemetrySectionCarriesMetrics) {
  const auto doc = parsed_result(/*with_telemetry=*/true);
  const JsonValue& tel = field(*doc, "telemetry");
  EXPECT_EQ(field(tel, "enabled").number(), 1.0);
  EXPECT_GT(field(tel, "trace_events").number(), 0.0);
  EXPECT_GT(field(tel, "samples").number(), 0.0);
  const JsonValue& counters = field(tel, "counters");
  EXPECT_NE(counters.object().find("sim.ops_completed"),
            counters.object().end());
  const JsonValue& hists = field(tel, "histograms");
  const auto it = hists.object().find("sim.response_us");
  ASSERT_NE(it, hists.object().end());
  const JsonValue& resp = *it->second;
  field(resp, "count");
  field(resp, "mean");
  field(resp, "p50");
  field(resp, "p95");
  field(resp, "p99");
  field(resp, "max");
  check_all_numbers_finite(*doc, "$");
}

}  // namespace
}  // namespace edm::sim
