// Data-mover behaviour: blocking vs non-blocking policies, pacing, and
// parked-request release.  Uses a scripted policy that migrates exactly
// the objects the test chooses.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "sim/simulator.h"
#include "trace/record.h"

namespace edm::sim {
namespace {

/// Plans a fixed set of moves once, with configurable blocking.
class ScriptedPolicy final : public core::MigrationPolicy {
 public:
  ScriptedPolicy(core::MigrationPlan plan, bool blocking)
      : core::MigrationPolicy(core::PolicyConfig{}),
        plan_(std::move(plan)),
        blocking_(blocking) {}

  const char* name() const override { return "scripted"; }
  bool blocks_foreground() const override { return blocking_; }
  core::MigrationPlan plan(const core::ClusterView&, bool) override {
    core::MigrationPlan out;
    if (!fired_) {
      out = plan_;
      fired_ = true;
    }
    return out;
  }

 private:
  core::MigrationPlan plan_;
  bool blocking_;
  bool fired_ = false;
};

struct Rig {
  Rig() {
    // 8 OSDs, one file per OSD start, big-ish objects.
    cluster::ClusterConfig ccfg;
    ccfg.num_osds = 8;
    ccfg.flash.num_blocks = 256;
    ccfg.flash.pages_per_block = 16;
    for (FileId f = 0; f < 16; ++f) {
      files.push_back({f, 512 * 1024});  // 512 KB files
    }
    cluster = std::make_unique<cluster::Cluster>(ccfg, files);
    cluster->populate();

    // A foreground workload that hammers file 2 (its objects are the
    // migration targets) plus background files.
    trace.name = "scripted";
    trace.files = files;
    for (int i = 0; i < 4000; ++i) {
      trace.records.push_back({static_cast<FileId>(i % 2 == 0 ? 2 : i % 16),
                               static_cast<std::uint64_t>((i * 4096) % (256 * 1024)),
                               4096, trace::OpType::kRead,
                               static_cast<std::uint16_t>(i % 4)});
    }
  }

  core::MigrationPlan one_move() {
    // Move object (file 2, index 1) to a group peer.
    const ObjectId oid = cluster->placement().object_id(2, 1);
    const OsdId src = cluster->locate(oid);
    const OsdId dst = cluster->placement().group_peers(src).front();
    core::MigrationPlan plan;
    plan.actions.push_back({oid, src, dst, cluster->object_pages(oid)});
    return plan;
  }

  RunResult run(bool blocking, double mover_mbps) {
    ScriptedPolicy policy(one_move(), blocking);
    SimConfig cfg;
    cfg.num_clients = 4;
    cfg.trigger = MigrationTrigger::kForcedMidpoint;
    cfg.mover_lane_mbps = mover_mbps;
    cfg.response_window_us = 200 * 1000;
    Simulator sim(cfg, *cluster, trace, &policy);
    return sim.run();
  }

  std::vector<trace::FileSpec> files;
  std::unique_ptr<cluster::Cluster> cluster;
  trace::Trace trace;
};

TEST(Mover, ScriptedMoveCompletes) {
  Rig rig;
  const auto r = rig.run(/*blocking=*/false, /*mbps=*/0.0);
  EXPECT_EQ(r.migration.moved_objects, 1u);
  EXPECT_EQ(r.migration.planned_objects, 1u);
  EXPECT_EQ(rig.cluster->remap().size(), 1u);
  EXPECT_EQ(r.completed_ops, rig.trace.records.size());
}

TEST(Mover, PacingStretchesTheShuffle) {
  Rig fast;
  Rig slow;
  const auto quick = fast.run(false, 0.0);    // device-speed mover
  const auto paced = slow.run(false, 0.25);   // 0.25 MB/s per lane
  ASSERT_EQ(quick.migration.moved_objects, 1u);
  ASSERT_EQ(paced.migration.moved_objects, 1u);
  const auto quick_duration =
      quick.migration.finished_at - quick.migration.started_at;
  const auto paced_duration =
      paced.migration.finished_at - paced.migration.started_at;
  EXPECT_GT(paced_duration, 4 * quick_duration);
}

TEST(Mover, BlockingPolicyStallsForegroundOnMovedObject) {
  // With a slow mover, a blocking policy must produce a worse tail latency
  // than a non-blocking one: requests to the in-flight object wait for the
  // whole copy.
  Rig blocking_rig;
  Rig forwarding_rig;
  const auto blocked = blocking_rig.run(/*blocking=*/true, /*mbps=*/0.5);
  const auto forwarded = forwarding_rig.run(/*blocking=*/false, 0.5);
  EXPECT_EQ(blocked.completed_ops, forwarded.completed_ops);
  const double blocked_p99 = blocked.response_histogram.quantile(0.999);
  const double forwarded_p99 = forwarded.response_histogram.quantile(0.999);
  EXPECT_GT(blocked_p99, 2.0 * forwarded_p99);
  // And the blocked tail must be at least the order of the copy duration.
  EXPECT_GT(blocked.response_histogram.max(),
            (blocked.migration.finished_at - blocked.migration.started_at) /
                2);
}

TEST(Mover, NonBlockingKeepsServingDuringMove) {
  Rig rig;
  const auto r = rig.run(false, 0.05);  // ~3.4 s copy at 0.05 MB/s
  // The copy far outlasts the (cheap) foreground workload, yet ops keep
  // completing while the migration is in flight: count ops in windows
  // overlapping the migration interval.
  const SimTime window_len = 200 * 1000;
  std::uint64_t during = 0;
  for (const auto& w : r.response_timeline) {
    if (w.window_start + window_len > r.migration.started_at &&
        w.window_start < r.migration.finished_at) {
      during += w.completed_ops;
    }
  }
  EXPECT_GT(during, 0u);
  EXPECT_GT(r.migration.finished_at, r.makespan_us);  // mover outlived clients
}

TEST(Mover, DeterministicWithPacing) {
  Rig a;
  Rig b;
  const auto ra = a.run(true, 0.5);
  const auto rb = b.run(true, 0.5);
  EXPECT_EQ(ra.makespan_us, rb.makespan_us);
  EXPECT_EQ(ra.migration.finished_at, rb.migration.finished_at);
  EXPECT_EQ(ra.aggregate_erases(), rb.aggregate_erases());
}

}  // namespace
}  // namespace edm::sim
