// End-to-end open-loop injection: the simulator drives arrival-stamped
// records from an OpenLoopSource through the OSD queues and reports
// per-tenant SLO metrics.  The subsystem is strictly additive -- with
// open_loop disabled the closed-loop replay must be untouched (the digest
// fixtures pin those bytes separately).
#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/generator.h"

namespace edm::sim {
namespace {

ExperimentConfig open_loop_cell(double home_rate = 3000.0,
                                double lair_rate = 1500.0) {
  ExperimentConfig cfg;
  cfg.scale = 0.01;
  cfg.policy = core::PolicyKind::kHdf;

  workload::TenantSpec home;
  home.profile = "home02";
  home.rate_ops_per_sec = home_rate;
  home.slo_ms = 25.0;
  workload::TenantSpec lair;
  lair.profile = "lair62";
  lair.rate_ops_per_sec = lair_rate;
  lair.slo_ms = 50.0;
  cfg.open_loop.tenants = {home, lair};
  return cfg;
}

TEST(OpenLoopRun, CompletesEveryArrivalAndFillsTenantMetrics) {
  const RunResult r = run_experiment(open_loop_cell());
  const auto& w = r.workload;
  ASSERT_TRUE(w.open_loop);
  ASSERT_EQ(w.tenants.size(), 2u);
  EXPECT_DOUBLE_EQ(w.offered_ops_per_sec, 4500.0);
  EXPECT_GT(w.arrivals, 0u);
  EXPECT_GT(w.peak_queue_depth, 0u);
  EXPECT_GE(r.makespan_us, w.last_arrival_us);

  std::uint64_t tenant_arrivals = 0;
  std::uint64_t tenant_completed = 0;
  for (const auto& t : w.tenants) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_GT(t.arrivals, 0u);
    // Open loop never drops work: everything injected completes.
    EXPECT_EQ(t.completed_ops, t.arrivals);
    EXPECT_GT(t.mean_response_us, 0.0);
    EXPECT_GT(t.response_histogram.count(), 0u);
    tenant_arrivals += t.arrivals;
    tenant_completed += t.completed_ops;
  }
  EXPECT_EQ(tenant_arrivals, w.arrivals);
  EXPECT_EQ(tenant_completed, r.completed_ops);
  EXPECT_EQ(w.tenants[0].name, "home02");
  EXPECT_EQ(w.tenants[1].name, "lair62");
  EXPECT_EQ(w.tenants[0].slo_us, 25'000u);
  EXPECT_EQ(w.tenants[1].slo_us, 50'000u);
}

TEST(OpenLoopRun, IsDeterministic) {
  const RunResult a = run_experiment(open_loop_cell());
  const RunResult b = run_experiment(open_loop_cell());
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  ASSERT_EQ(a.workload.tenants.size(), b.workload.tenants.size());
  for (std::size_t i = 0; i < a.workload.tenants.size(); ++i) {
    EXPECT_EQ(a.workload.tenants[i].slo_violations,
              b.workload.tenants[i].slo_violations);
    EXPECT_DOUBLE_EQ(a.workload.tenants[i].mean_response_us,
                     b.workload.tenants[i].mean_response_us);
  }
  std::ostringstream ja;
  std::ostringstream jb;
  write_json(a, ja);
  write_json(b, jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(OpenLoopRun, OverloadGrowsQueuesBeyondClosedLoopBounds) {
  // Closed-loop queues are bounded by clients x queue depth; an open-loop
  // overload has no such bound.  Crank the offered load and watch the
  // backlog grow well past what any closed-loop replay could produce.
  const RunResult gentle = run_experiment(open_loop_cell(1000.0, 500.0));
  const RunResult slammed = run_experiment(open_loop_cell(30000.0, 15000.0));
  EXPECT_GT(slammed.workload.peak_queue_depth,
            4 * gentle.workload.peak_queue_depth);
  // Under overload the response tail blows out too.
  EXPECT_GT(slammed.response_histogram.quantile(0.99),
            gentle.response_histogram.quantile(0.99));
}

TEST(OpenLoopRun, ClosedLoopLeavesWorkloadSectionEmpty) {
  ExperimentConfig cfg;
  cfg.scale = 0.01;
  const RunResult r = run_experiment(cfg);
  EXPECT_FALSE(r.workload.open_loop);
  EXPECT_TRUE(r.workload.tenants.empty());
  EXPECT_EQ(r.workload.arrivals, 0u);
  EXPECT_EQ(r.workload.peak_queue_depth, 0u);
}

TEST(OpenLoopRun, StreamingVariantDelegates) {
  const RunResult a = run_experiment(open_loop_cell());
  const RunResult b = run_experiment_streaming(open_loop_cell());
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
}

TEST(OpenLoopRun, PreGeneratedTraceVariantRejectsOpenLoop) {
  const auto cfg = open_loop_cell();
  const trace::Trace trace =
      trace::TraceGenerator(trace::profile_by_name("home02").scaled(0.005), 2)
          .generate();
  EXPECT_THROW(run_experiment(cfg, trace), std::invalid_argument);
}

TEST(OpenLoopRun, TenantScaleInheritsExperimentScale) {
  ExperimentConfig cfg = open_loop_cell();
  cfg.scale = 0.02;
  const ExperimentConfig fin = finalize(cfg);
  for (const auto& t : fin.open_loop.tenants) {
    EXPECT_DOUBLE_EQ(t.scale, 0.02);
  }
  // An explicit tenant scale wins over the experiment default.
  cfg.open_loop.tenants[0].scale = 0.5;
  const ExperimentConfig fin2 = finalize(cfg);
  EXPECT_DOUBLE_EQ(fin2.open_loop.tenants[0].scale, 0.5);
  EXPECT_DOUBLE_EQ(fin2.open_loop.tenants[1].scale, 0.02);
}

}  // namespace
}  // namespace edm::sim
