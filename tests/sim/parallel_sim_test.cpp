// Simulator-level contract for the parallel flash dispatch path
// (docs/internals/flash.md "Parallel timing model"):
//
//  * an explicit 1x1x1 geometry with zero bus delays is the flat model --
//    report bytes identical to the default config, at any osd_queue_depth
//    (a flat OSD is definitionally serial, the depth knob is inert);
//  * a multi-die geometry converts queue depth into throughput;
//  * parallel-geometry OSDs forfeit the calm certificate: sharded replay
//    must never speculate through a die-queue device, and the forfeit
//    path stays byte-identical to the serial loop.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/experiment.h"
#include "sim/report.h"

namespace edm::sim {
namespace {

std::string report_json(const RunResult& result) {
  std::ostringstream os;
  write_json(result, os);
  return os.str();
}

ExperimentConfig base_cell() {
  ExperimentConfig cfg;
  cfg.trace_name = "home02";
  cfg.policy = core::PolicyKind::kNone;
  cfg.scale = 0.01;
  cfg.num_osds = 8;
  cfg.num_groups = 4;
  return cfg;
}

ExperimentConfig nvme_cell() {
  ExperimentConfig cfg = base_cell();
  cfg.flash.geometry = flash::FlashGeometry{8, 4, 2};
  cfg.flash.bus_ctrl_us = 2;
  cfg.flash.bus_data_us = 10;
  return cfg;
}

TEST(ParallelSim, ExplicitFlatGeometryIsByteIdenticalToDefault) {
  const std::string expected = report_json(run_experiment(base_cell()));

  ExperimentConfig cfg = base_cell();
  cfg.flash.geometry = flash::FlashGeometry{1, 1, 1};
  cfg.flash.bus_ctrl_us = 0;
  cfg.flash.bus_data_us = 0;
  EXPECT_EQ(expected, report_json(run_experiment(cfg)));

  // The depth knob is inert on flat devices: they clamp to serial
  // service, so even osd_queue_depth = 8 replays the same bytes.
  cfg.sim.osd_queue_depth = 8;
  EXPECT_EQ(expected, report_json(run_experiment(cfg)));
}

TEST(ParallelSim, QueueDepthBuysThroughputOnParallelGeometry) {
  // Zero software overhead so the device pipeline is the bottleneck (the
  // per-request overhead would otherwise overlap across sub-requests and
  // mask the geometry).
  ExperimentConfig cfg = nvme_cell();
  cfg.sim.trigger = MigrationTrigger::kNone;
  cfg.sim.request_overhead_us = 0;
  cfg.sim.osd_queue_depth = 1;
  const RunResult serial = run_experiment(cfg);
  cfg.sim.osd_queue_depth = 8;
  const RunResult deep = run_experiment(cfg);
  ASSERT_EQ(serial.completed_ops, deep.completed_ops);
  EXPECT_LT(deep.makespan_us, serial.makespan_us)
      << "8 deep dispatch should overlap die work the serial replay cannot";
}

TEST(ParallelSim, ParallelGeometryForfeitsSpeculation) {
  // fast_extent_io cannot predict dispatch through die queues, so any
  // parallel-geometry OSD forfeits the calm certificate outright: sharded
  // replay runs but never speculates (spec_batches == 0), and its report
  // is byte-identical to the serial loop.
  ExperimentConfig cfg = nvme_cell();
  cfg.sim.trigger = MigrationTrigger::kNone;
  cfg.sim.shards = 1;
  const std::string expected = report_json(run_experiment(cfg));

  cfg.sim.shards = 2;
  const RunResult sharded = run_experiment(cfg);
  EXPECT_EQ(sharded.perf.shards, 2u);
  EXPECT_EQ(sharded.perf.spec_batches, 0u);
  EXPECT_EQ(sharded.perf.speculated_ios, 0u);
  EXPECT_EQ(expected, report_json(sharded));

  // Same scenario on flat devices *does* speculate -- pinning that the
  // forfeit really is the geometry, not the scenario.
  ExperimentConfig flat = base_cell();
  flat.sim.trigger = MigrationTrigger::kNone;
  flat.sim.shards = 2;
  EXPECT_GT(run_experiment(flat).perf.spec_batches, 0u);
}

TEST(ParallelSim, ShardedReplayIdenticalUnderMigrationPolicy) {
  // The full stack -- HDF migration, trims, wear monitoring -- over
  // parallel devices at shards {2, 4}: byte-identical to serial.
  ExperimentConfig cfg = nvme_cell();
  cfg.policy = core::PolicyKind::kHdf;
  cfg.sim.shards = 1;
  const std::string expected = report_json(run_experiment(cfg));
  for (const std::uint32_t shards : {2u, 4u}) {
    ExperimentConfig sharded = cfg;
    sharded.sim.shards = shards;
    ASSERT_EQ(expected, report_json(run_experiment(sharded)))
        << "parallel-geometry replay diverged at --shards " << shards;
  }
}

TEST(ParallelSim, DepthChangesReplayOnlyThroughDeviceTiming) {
  // Determinism: the same config replays to the same bytes, and depth is
  // a real model knob -- two depths give *different* (but individually
  // stable) reports on parallel devices.
  ExperimentConfig cfg = nvme_cell();
  cfg.sim.osd_queue_depth = 4;
  const std::string first = report_json(run_experiment(cfg));
  EXPECT_EQ(first, report_json(run_experiment(cfg)));
  cfg.sim.osd_queue_depth = 1;
  EXPECT_NE(first, report_json(run_experiment(cfg)));
}

TEST(ParallelSim, ZeroQueueDepthRejected) {
  ExperimentConfig cfg = base_cell();
  cfg.sim.osd_queue_depth = 0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace edm::sim
