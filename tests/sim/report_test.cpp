#include "sim/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.h"

namespace edm::sim {
namespace {

RunResult sample_result() {
  ExperimentConfig cfg;
  cfg.trace_name = "home02";
  cfg.scale = 0.004;
  cfg.num_osds = 8;
  cfg.policy = core::PolicyKind::kHdf;
  return run_experiment(cfg);
}

TEST(Report, TextContainsHeadlineMetrics) {
  const RunResult r = sample_result();
  std::ostringstream os;
  write_report(r, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("EDM-HDF"), std::string::npos);
  EXPECT_NE(out.find("home02"), std::string::npos);
  EXPECT_NE(out.find("throughput"), std::string::npos);
  EXPECT_NE(out.find("aggregate_erases"), std::string::npos);
  EXPECT_NE(out.find("osd"), std::string::npos);  // per-OSD table
}

TEST(Report, QuietModeOmitsTables) {
  const RunResult r = sample_result();
  std::ostringstream full;
  std::ostringstream quiet;
  write_report(r, full, true, true);
  write_report(r, quiet, false, false);
  EXPECT_LT(quiet.str().size(), full.str().size());
  EXPECT_EQ(quiet.str().find("gc_moves"), std::string::npos);
}

TEST(Report, JsonIsStructurallySound) {
  const RunResult r = sample_result();
  std::ostringstream os;
  write_json(r, os);
  const std::string out = os.str();

  // Balanced braces/brackets and no trailing commas.
  int depth = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : out) {
    if (in_string) {
      if (c == '"' && prev != '\\') in_string = false;
    } else {
      if (c == '"') in_string = true;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        --depth;
        EXPECT_NE(prev, ',') << "trailing comma before " << c;
      }
      ASSERT_GE(depth, 0);
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev = c;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // Required fields present.
  for (const char* key :
       {"\"schema\":\"edm-run-result/4\"", "\"summary\":", "\"migration\":",
        "\"per_osd\":", "\"timeline\":", "\"throughput_ops_per_sec\":",
        "\"moved_objects\":", "\"erase_rsd\":", "\"telemetry\":",
        "\"counters\":", "\"histograms\":"}) {
    EXPECT_NE(out.find(key), std::string::npos) << key;
  }
  // No NaN/inf can appear as a JSON value.  Match ":nan"/":-nan" rather
  // than the bare substring -- key names may legitimately contain it
  // ("tenants").
  EXPECT_EQ(out.find(":nan"), std::string::npos);
  EXPECT_EQ(out.find(":-nan"), std::string::npos);
  EXPECT_EQ(out.find(":inf"), std::string::npos);
  EXPECT_EQ(out.find(":-inf"), std::string::npos);
}

TEST(Report, JsonPerOsdArityMatchesCluster) {
  const RunResult r = sample_result();
  std::ostringstream os;
  write_json(r, os);
  const std::string out = os.str();
  std::size_t count = 0;
  for (std::size_t pos = out.find("\"host_page_writes\"");
       pos != std::string::npos;
       pos = out.find("\"host_page_writes\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, r.per_osd.size());
}

}  // namespace
}  // namespace edm::sim
