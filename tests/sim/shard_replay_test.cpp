// Sharded-replay determinism contract (docs/internals/sim.md): for any
// SimConfig::shards value the report JSON must be byte-identical to the
// serial event loop -- sharding pre-executes committed flash device work,
// it never reorders events.  Every scenario family the simulator supports
// is replayed at shards {1, 2, 4} here, plus the partition edge cases
// (shards > OSDs, one OSD per shard) and window-boundary stress (service
// floors far above and below the default).
//
// The existing digest fixtures pin shards == 1 against the pre-shard
// tree; these tests pin shards > 1 against shards == 1.  Together:
// identical bytes at any shard count, equal to the historical serial loop.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/experiment.h"
#include "sim/report.h"

namespace edm::sim {
namespace {

std::string report_json(const RunResult& result) {
  std::ostringstream os;
  write_json(result, os);
  return os.str();
}

ExperimentConfig base_cell(const std::string& trace, core::PolicyKind policy) {
  ExperimentConfig cfg;
  cfg.trace_name = trace;
  cfg.policy = policy;
  cfg.scale = 0.01;
  cfg.num_osds = 8;
  cfg.num_groups = 4;
  return cfg;
}

/// Runs `cfg` at shards 1 and at each entry of `shard_counts`; every
/// sharded replay must render the identical report bytes.
void expect_identical_at_any_shards(
    ExperimentConfig cfg, std::initializer_list<std::uint32_t> shard_counts = {
                              2, 4}) {
  cfg.sim.shards = 1;
  const std::string expected = report_json(run_experiment(cfg));
  for (const std::uint32_t shards : shard_counts) {
    ExperimentConfig sharded = cfg;
    sharded.sim.shards = shards;
    ASSERT_EQ(expected, report_json(run_experiment(sharded)))
        << "sharded replay diverged from serial at --shards " << shards;
  }
}

// --- scenario families ------------------------------------------------

TEST(ShardReplay, BaselineHome02) {
  expect_identical_at_any_shards(
      base_cell("home02", core::PolicyKind::kNone));
}

TEST(ShardReplay, HdfHome02Midpoint) {
  // Forced-midpoint HDF: blocking migration mid-run.  Speculation is off
  // until the midpoint fires and the mover drains, then kicks in.
  expect_identical_at_any_shards(base_cell("home02", core::PolicyKind::kHdf));
}

TEST(ShardReplay, CdfLair62MonitorAdaptive) {
  // Monitor trigger + adaptive sigma: epoch ticks both observe flash wear
  // counters and can start migrations, so every tick must act as a batch
  // barrier (the window clamp under test here).
  ExperimentConfig cfg = base_cell("lair62", core::PolicyKind::kCdf);
  cfg.sim.trigger = MigrationTrigger::kMonitor;
  cfg.sim.adaptive_sigma = true;
  expect_identical_at_any_shards(cfg);
}

TEST(ShardReplay, HdfDeasnaFaults) {
  // Scheduled fail + online rebuild + transient errors: the injector
  // forfeits speculation entirely (calm is false), so this pins that the
  // sharded loop's batch framing alone cannot perturb a fault replay.
  ExperimentConfig cfg = base_cell("deasna", core::PolicyKind::kHdf);
  cfg.sim.faults.fail(2, 30ull * 1000 * 1000)
      .rebuild(2, 120ull * 1000 * 1000);
  cfg.sim.faults.transient_error_rate = 0.002;
  expect_identical_at_any_shards(cfg);
}

TEST(ShardReplay, FailSlowWithHealthMitigation) {
  // Fail-slow onset + online health monitor with hedged reads and
  // quarantine-and-drain -- the most event-kind-diverse configuration.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kCdf);
  cfg.sim.faults.slow(3, 10ull * 1000 * 1000, 4.0);
  cfg.sim.health.enabled = true;
  cfg.sim.health.mitigate = true;
  expect_identical_at_any_shards(cfg);
}

TEST(ShardReplay, OpenLoopMultiTenant) {
  // Open-loop arrivals land on OSD queues mid-batch, behind any
  // speculated prefix; they must fall back to live execution without
  // disturbing the cached chain.
  ExperimentConfig cfg;
  cfg.scale = 0.01;
  cfg.policy = core::PolicyKind::kHdf;
  workload::TenantSpec home;
  home.profile = "home02";
  home.rate_ops_per_sec = 3000.0;
  home.slo_ms = 25.0;
  workload::TenantSpec lair;
  lair.profile = "lair62";
  lair.rate_ops_per_sec = 1500.0;
  lair.slo_ms = 50.0;
  cfg.open_loop.tenants = {home, lair};
  expect_identical_at_any_shards(cfg);
}

TEST(ShardReplay, StreamingMatchesMaterialisedAtFourShards) {
  // Streaming trace lanes + sharding compose: both replay the identical
  // event sequence, so streaming-at-4-shards must equal
  // materialised-at-1-shard byte for byte.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kHdf);
  cfg.sim.shards = 1;
  const std::string expected = report_json(run_experiment(cfg));
  cfg.sim.shards = 4;
  ASSERT_EQ(expected, report_json(run_experiment_streaming(cfg)));
}

// --- speculation actually engages ------------------------------------

TEST(ShardReplay, SpeculationEngagesOnCalmRuns) {
  // A no-trigger run is calm from the first event; if the shard workers
  // never pre-execute anything the whole subsystem is dead weight and
  // this test is the alarm.  (perf.* is deterministic but never
  // serialised, so the identity checks above cannot see these counters.)
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.trigger = MigrationTrigger::kNone;
  cfg.sim.shards = 2;
  const RunResult r = run_experiment(cfg);
  EXPECT_EQ(r.perf.shards, 2u);
  EXPECT_GT(r.perf.spec_batches, 0u);
  EXPECT_GT(r.perf.speculated_ios, 0u);
}

TEST(ShardReplay, SerialRunsNeverSpeculate) {
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.trigger = MigrationTrigger::kNone;
  const RunResult r = run_experiment(cfg);
  EXPECT_EQ(r.perf.shards, 1u);
  EXPECT_EQ(r.perf.spec_batches, 0u);
  EXPECT_EQ(r.perf.speculated_ios, 0u);
}

// --- partition edge cases ---------------------------------------------

TEST(ShardReplay, MoreShardsThanOsds) {
  // 8 OSDs on 16 shards: half the shards own nothing.  Partitioning must
  // tolerate empty shards and still produce identical bytes.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kHdf);
  expect_identical_at_any_shards(cfg, {16});
}

TEST(ShardReplay, OneOsdPerShard) {
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kHdf);
  expect_identical_at_any_shards(cfg, {8});
}

TEST(ShardReplay, TinyClusterSingleOsdShards) {
  // The smallest legal cluster (one OSD per RAID group) at one OSD per
  // shard: tiny candidate sets, so many batches skip speculation as
  // not-worth-a-barrier -- the skip path must be byte-neutral too.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.num_osds = 4;
  cfg.num_groups = 4;
  expect_identical_at_any_shards(cfg, {4});
}

// --- window-boundary stress -------------------------------------------

TEST(ShardReplay, TinyServiceFloorWindows) {
  // request_overhead_us = 1 shrinks the batch window to the 25 us floor
  // x 64: completions land exactly on batch boundaries far more often
  // (an event at batch_end belongs to the next batch -- the strict-<
  // contract under test).
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.trigger = MigrationTrigger::kNone;
  cfg.sim.request_overhead_us = 1;
  expect_identical_at_any_shards(cfg, {2, 4});
}

TEST(ShardReplay, HugeServiceFloorWindows) {
  // A 10 ms overhead makes the window ~640 ms of simulated time, so
  // per-OSD chains run deep and whole client round-trips complete inside
  // one batch.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.trigger = MigrationTrigger::kNone;
  cfg.sim.request_overhead_us = 10'000;
  expect_identical_at_any_shards(cfg, {2});
}

// --- config validation -------------------------------------------------

TEST(ShardReplay, ZeroShardsRejected) {
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.shards = 0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace edm::sim
