// Sharded-replay determinism contract (docs/internals/sim.md): for any
// SimConfig::shards value the report JSON must be byte-identical to the
// serial event loop -- sharding pre-executes committed flash device work,
// it never reorders events.  Every scenario family the simulator supports
// is replayed at shards {1, 2, 4} here, plus the partition edge cases
// (shards > OSDs, one OSD per shard) and window-boundary stress (service
// floors far above and below the default).
//
// The existing digest fixtures pin shards == 1 against the pre-shard
// tree; these tests pin shards > 1 against shards == 1.  Together:
// identical bytes at any shard count, equal to the historical serial loop.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/experiment.h"
#include "sim/report.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"
#include "telemetry/tracer.h"

namespace edm::sim {
namespace {

std::string report_json(const RunResult& result) {
  std::ostringstream os;
  write_json(result, os);
  return os.str();
}

ExperimentConfig base_cell(const std::string& trace, core::PolicyKind policy) {
  ExperimentConfig cfg;
  cfg.trace_name = trace;
  cfg.policy = policy;
  cfg.scale = 0.01;
  cfg.num_osds = 8;
  cfg.num_groups = 4;
  return cfg;
}

/// Runs `cfg` at shards 1 and at each entry of `shard_counts`; every
/// sharded replay must render the identical report bytes.
void expect_identical_at_any_shards(
    ExperimentConfig cfg, std::initializer_list<std::uint32_t> shard_counts = {
                              2, 4}) {
  cfg.sim.shards = 1;
  const std::string expected = report_json(run_experiment(cfg));
  for (const std::uint32_t shards : shard_counts) {
    ExperimentConfig sharded = cfg;
    sharded.sim.shards = shards;
    ASSERT_EQ(expected, report_json(run_experiment(sharded)))
        << "sharded replay diverged from serial at --shards " << shards;
  }
}

// --- scenario families ------------------------------------------------

TEST(ShardReplay, BaselineHome02) {
  expect_identical_at_any_shards(
      base_cell("home02", core::PolicyKind::kNone));
}

TEST(ShardReplay, HdfHome02Midpoint) {
  // Forced-midpoint HDF: blocking migration mid-run.  Speculation is off
  // until the midpoint fires and the mover drains, then kicks in.
  expect_identical_at_any_shards(base_cell("home02", core::PolicyKind::kHdf));
}

TEST(ShardReplay, CdfLair62MonitorAdaptive) {
  // Monitor trigger + adaptive sigma: epoch ticks both observe flash wear
  // counters and can start migrations, so every tick must act as a batch
  // barrier (the window clamp under test here).
  ExperimentConfig cfg = base_cell("lair62", core::PolicyKind::kCdf);
  cfg.sim.trigger = MigrationTrigger::kMonitor;
  cfg.sim.adaptive_sigma = true;
  expect_identical_at_any_shards(cfg);
}

TEST(ShardReplay, HdfDeasnaFaults) {
  // Scheduled fail + online rebuild + transient errors: the injector
  // forfeits speculation entirely (calm is false), so this pins that the
  // sharded loop's batch framing alone cannot perturb a fault replay.
  ExperimentConfig cfg = base_cell("deasna", core::PolicyKind::kHdf);
  cfg.sim.faults.fail(2, 30ull * 1000 * 1000)
      .rebuild(2, 120ull * 1000 * 1000);
  cfg.sim.faults.transient_error_rate = 0.002;
  expect_identical_at_any_shards(cfg);
}

TEST(ShardReplay, FailSlowWithHealthMitigation) {
  // Fail-slow onset + online health monitor with hedged reads and
  // quarantine-and-drain -- the most event-kind-diverse configuration.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kCdf);
  cfg.sim.faults.slow(3, 10ull * 1000 * 1000, 4.0);
  cfg.sim.health.enabled = true;
  cfg.sim.health.mitigate = true;
  expect_identical_at_any_shards(cfg);
}

TEST(ShardReplay, OpenLoopMultiTenant) {
  // Open-loop arrivals land on OSD queues mid-batch, behind any
  // speculated prefix; they must fall back to live execution without
  // disturbing the cached chain.
  ExperimentConfig cfg;
  cfg.scale = 0.01;
  cfg.policy = core::PolicyKind::kHdf;
  workload::TenantSpec home;
  home.profile = "home02";
  home.rate_ops_per_sec = 3000.0;
  home.slo_ms = 25.0;
  workload::TenantSpec lair;
  lair.profile = "lair62";
  lair.rate_ops_per_sec = 1500.0;
  lair.slo_ms = 50.0;
  cfg.open_loop.tenants = {home, lair};
  expect_identical_at_any_shards(cfg);
}

TEST(ShardReplay, StreamingMatchesMaterialisedAtFourShards) {
  // Streaming trace lanes + sharding compose: both replay the identical
  // event sequence, so streaming-at-4-shards must equal
  // materialised-at-1-shard byte for byte.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kHdf);
  cfg.sim.shards = 1;
  const std::string expected = report_json(run_experiment(cfg));
  cfg.sim.shards = 4;
  ASSERT_EQ(expected, report_json(run_experiment_streaming(cfg)));
}

// --- speculation actually engages ------------------------------------

TEST(ShardReplay, SpeculationEngagesOnCalmRuns) {
  // A no-trigger run is calm from the first event; if the shard workers
  // never pre-execute anything the whole subsystem is dead weight and
  // this test is the alarm.  (perf.* is deterministic but never
  // serialised, so the identity checks above cannot see these counters.)
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.trigger = MigrationTrigger::kNone;
  cfg.sim.shards = 2;
  const RunResult r = run_experiment(cfg);
  EXPECT_EQ(r.perf.shards, 2u);
  EXPECT_GT(r.perf.spec_batches, 0u);
  EXPECT_GT(r.perf.speculated_ios, 0u);
}

TEST(ShardReplay, SerialRunsNeverSpeculate) {
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.trigger = MigrationTrigger::kNone;
  const RunResult r = run_experiment(cfg);
  EXPECT_EQ(r.perf.shards, 1u);
  EXPECT_EQ(r.perf.spec_batches, 0u);
  EXPECT_EQ(r.perf.speculated_ios, 0u);
}

// --- partition edge cases ---------------------------------------------

TEST(ShardReplay, MoreShardsThanOsds) {
  // 8 OSDs on 16 shards: half the shards own nothing.  Partitioning must
  // tolerate empty shards and still produce identical bytes.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kHdf);
  expect_identical_at_any_shards(cfg, {16});
}

TEST(ShardReplay, OneOsdPerShard) {
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kHdf);
  expect_identical_at_any_shards(cfg, {8});
}

TEST(ShardReplay, TinyClusterSingleOsdShards) {
  // The smallest legal cluster (one OSD per RAID group) at one OSD per
  // shard: tiny candidate sets, so many batches skip speculation as
  // not-worth-a-barrier -- the skip path must be byte-neutral too.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.num_osds = 4;
  cfg.num_groups = 4;
  expect_identical_at_any_shards(cfg, {4});
}

// --- window-boundary stress -------------------------------------------

TEST(ShardReplay, TinyServiceFloorWindows) {
  // request_overhead_us = 1 shrinks the batch window to the 25 us floor
  // x 64: completions land exactly on batch boundaries far more often
  // (an event at batch_end belongs to the next batch -- the strict-<
  // contract under test).
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.trigger = MigrationTrigger::kNone;
  cfg.sim.request_overhead_us = 1;
  expect_identical_at_any_shards(cfg, {2, 4});
}

TEST(ShardReplay, HugeServiceFloorWindows) {
  // A 10 ms overhead makes the window ~640 ms of simulated time, so
  // per-OSD chains run deep and whole client round-trips complete inside
  // one batch.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.trigger = MigrationTrigger::kNone;
  cfg.sim.request_overhead_us = 10'000;
  expect_identical_at_any_shards(cfg, {2});
}

// --- config validation -------------------------------------------------

TEST(ShardReplay, ZeroShardsRejected) {
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.shards = 0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

// --- monitor mode: the widened calm certificate ------------------------
//
// PR 8 forfeited speculation whenever telemetry, the wear/health monitor,
// or the mover was active.  The widened certificate keeps speculating
// through all three: telemetry spans/counters are buffered per shard
// worker and merged at the batch barrier, monitor reads only happen at
// tick barriers (window clamps), and an active migration excludes only
// its endpoint OSDs / in-flight objects.  These tests pin (a) byte
// identity of report + trace + time-series streams at any shard count and
// (b) that speculation actually engages -- without (b), (a) would pass
// vacuously with the workers forfeiting everything.

/// The EDM paper's endurance-aware hot path: CDF policy on the wear
/// monitor with adaptive sigma, online health monitoring with mitigation,
/// and full telemetry (trace + counters + time-series rows).
ExperimentConfig monitor_cell(const std::string& trace) {
  ExperimentConfig cfg = base_cell(trace, core::PolicyKind::kCdf);
  cfg.policy_config.lambda = 0.01;  // eager trigger: mover activity early
  cfg.sim.trigger = MigrationTrigger::kMonitor;
  cfg.sim.monitor_cooldown_epochs = 1;
  // A reduced replay spans few default (60 s) epochs; shorten them so the
  // monitor gets real trigger opportunities (same move tools/edm_run makes
  // for --trigger=monitor runs).
  cfg.sim.epoch_length_us = 500'000;
  cfg.sim.adaptive_sigma = true;
  cfg.sim.health.enabled = true;
  cfg.sim.health.mitigate = true;
  cfg.telemetry.trace_enabled = true;
  cfg.telemetry.metrics_enabled = true;
  cfg.telemetry.sample_interval_us = 500'000;
  return cfg;
}

std::string trace_json(const RunResult& r) {
  std::ostringstream os;
  r.telemetry->tracer()->write_chrome_json(os);
  return os.str();
}

std::string timeseries_csv(const RunResult& r) {
  std::ostringstream os;
  r.telemetry->sampler()->write_csv(os);
  return os.str();
}

/// Runs `cfg` serially and at each sharded count; report bytes, Chrome
/// trace bytes and time-series CSV bytes must all be identical.
void expect_streams_identical_at_any_shards(
    ExperimentConfig cfg,
    std::initializer_list<std::uint32_t> shard_counts = {2, 4}) {
  cfg.sim.shards = 1;
  const RunResult serial = run_experiment(cfg);
  ASSERT_NE(serial.telemetry, nullptr);
  const std::string report = report_json(serial);
  const std::string trace = trace_json(serial);
  const std::string csv = timeseries_csv(serial);
  for (const std::uint32_t shards : shard_counts) {
    ExperimentConfig sharded_cfg = cfg;
    sharded_cfg.sim.shards = shards;
    const RunResult sharded = run_experiment(sharded_cfg);
    ASSERT_EQ(report, report_json(sharded))
        << "report bytes diverged at --shards " << shards;
    ASSERT_EQ(trace, trace_json(sharded))
        << "trace bytes diverged at --shards " << shards;
    ASSERT_EQ(csv, timeseries_csv(sharded))
        << "time-series bytes diverged at --shards " << shards;
  }
}

TEST(ShardReplayMonitorMode, TelemetryByteIdentityAtManyShardCounts) {
  expect_streams_identical_at_any_shards(monitor_cell("home02"),
                                         {2, 4, 8});
}

TEST(ShardReplayMonitorMode, GcSpansSurviveSharding) {
  // The deferred-GC-sink path is only exercised when speculated writes
  // trigger GC; pin that the trace actually contains GC spans so the
  // byte-identity above is not vacuous on that axis.
  ExperimentConfig cfg = monitor_cell("home02");
  cfg.sim.shards = 4;
  const RunResult r = run_experiment(cfg);
  EXPECT_NE(trace_json(r).find("\"gc\""), std::string::npos)
      << "no GC spans in the trace -- the buffered-emission path is idle";
}

TEST(ShardReplayMonitorMode, MoverActiveReplayIdentity) {
  // The scenario must really migrate -- otherwise the per-OSD exclusion
  // and taint-break machinery under test never runs.
  ExperimentConfig cfg = monitor_cell("lair62");
  {
    ExperimentConfig probe = cfg;
    probe.sim.shards = 1;
    const RunResult r = run_experiment(probe);
    ASSERT_GT(r.migration.triggers, 0u)
        << "monitor cell never triggered a migration; tighten lambda";
    ASSERT_GT(r.migration.moved_objects, 0u);
  }
  expect_streams_identical_at_any_shards(cfg, {2, 4});
}

TEST(ShardReplayMonitorMode, OpenLoopArrivalsWithTelemetry) {
  // Open-loop arrivals land on OSD queues mid-batch behind speculated
  // prefixes while telemetry records them; stream bytes must not notice.
  ExperimentConfig cfg;
  cfg.scale = 0.01;
  cfg.policy = core::PolicyKind::kHdf;
  cfg.telemetry.trace_enabled = true;
  cfg.telemetry.metrics_enabled = true;
  cfg.telemetry.sample_interval_us = 500'000;
  workload::TenantSpec home;
  home.profile = "home02";
  home.rate_ops_per_sec = 3000.0;
  home.slo_ms = 25.0;
  workload::TenantSpec lair;
  lair.profile = "lair62";
  lair.rate_ops_per_sec = 1500.0;
  lair.slo_ms = 50.0;
  cfg.open_loop.tenants = {home, lair};
  expect_streams_identical_at_any_shards(cfg, {2, 4});
}

TEST(ShardReplayMonitorMode, SpeculationSurvivesMonitorMode) {
  // The point of the widened certificate: telemetry + wear monitor +
  // mover enabled, and the shard workers still pre-execute device work.
  // Under PR 8's all-or-nothing calm() every counter here was zero.
  ExperimentConfig cfg = monitor_cell("home02");
  cfg.sim.shards = 2;
  const RunResult r = run_experiment(cfg);
  EXPECT_GT(r.perf.spec_batches, 0u);
  EXPECT_GT(r.perf.speculated_ios, 0u);
  // None of the remaining forfeit reasons applies to this configuration.
  EXPECT_EQ(r.perf.spec_forfeit_geometry, 0u);
  EXPECT_EQ(r.perf.spec_forfeit_faults, 0u);
  EXPECT_EQ(r.perf.spec_forfeit_failure, 0u);
  EXPECT_EQ(r.perf.spec_forfeit_rebuild, 0u);
  EXPECT_EQ(r.perf.spec_forfeit_trigger, 0u);
}

TEST(ShardReplayMonitorMode, ForfeitReasonAccounting) {
  // A fail-slow injector forfeits every batch (kSpecForfeitFaults), so a
  // sharded fault run must speculate nothing and say why.
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kNone);
  cfg.sim.trigger = MigrationTrigger::kNone;
  cfg.sim.faults.slow(3, 10ull * 1000 * 1000, 4.0);
  cfg.sim.shards = 2;
  const RunResult r = run_experiment(cfg);
  EXPECT_EQ(r.perf.speculated_ios, 0u);
  EXPECT_GT(r.perf.spec_forfeit_faults, 0u);
  EXPECT_EQ(r.perf.spec_forfeit_geometry, 0u);
}

TEST(ShardReplayMonitorMode, TriggerForfeitClearsAfterMidpoint) {
  // Forced-midpoint HDF: forfeits as kSpecForfeitTrigger until the
  // midpoint fires, then speculates through the blocking mover window
  // (per-OSD exclusion + taint breaks instead of a global forfeit).
  ExperimentConfig cfg = base_cell("home02", core::PolicyKind::kHdf);
  cfg.sim.shards = 2;
  const RunResult r = run_experiment(cfg);
  ASSERT_GT(r.migration.moved_objects, 0u);
  EXPECT_GT(r.perf.spec_forfeit_trigger, 0u);
  EXPECT_GT(r.perf.speculated_ios, 0u);
}

}  // namespace
}  // namespace edm::sim
