#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/hdf_policy.h"
#include "trace/generator.h"
#include "trace/profile.h"

namespace edm::sim {
namespace {

struct Harness {
  explicit Harness(double scale = 0.005, std::uint32_t osds = 8)
      : profile(trace::profile_by_name("home02").scaled(scale)),
        trace(trace::TraceGenerator(profile, 4).generate()) {
    cluster::ClusterConfig ccfg;
    ccfg.num_osds = osds;
    ccfg.num_groups = 4;
    ccfg.objects_per_file = 4;
    ccfg.flash.num_blocks = 64;
    ccfg.flash.pages_per_block = 16;
    cluster = std::make_unique<cluster::Cluster>(ccfg, trace.files);
    cluster->populate();
    cluster->steady_state_warmup();
    cluster->reset_flash_stats();
  }

  SimConfig sim_config() const {
    SimConfig cfg;
    cfg.num_clients = 4;
    cfg.response_window_us = 1000 * 1000;
    return cfg;
  }

  trace::WorkloadProfile profile;
  trace::Trace trace;
  std::unique_ptr<cluster::Cluster> cluster;
};

TEST(Simulator, BaselineCompletesEveryRecord) {
  Harness h;
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kNone;
  Simulator sim(cfg, *h.cluster, h.trace, nullptr);
  const RunResult r = sim.run();
  EXPECT_EQ(r.completed_ops, h.trace.records.size());
  EXPECT_GT(r.makespan_us, 0u);
  EXPECT_GT(r.throughput_ops_per_sec(), 0.0);
  EXPECT_EQ(r.migration.moved_objects, 0u);
  EXPECT_EQ(r.policy_name, "baseline");
}

TEST(Simulator, DeterministicAcrossRuns) {
  Harness h1;
  Harness h2;
  SimConfig cfg = h1.sim_config();
  cfg.trigger = MigrationTrigger::kNone;
  const RunResult a = Simulator(cfg, *h1.cluster, h1.trace, nullptr).run();
  const RunResult b = Simulator(cfg, *h2.cluster, h2.trace, nullptr).run();
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.aggregate_erases(), b.aggregate_erases());
  EXPECT_EQ(a.mean_response_us, b.mean_response_us);
}

TEST(Simulator, RunTwiceThrows) {
  Harness h;
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kNone;
  Simulator sim(cfg, *h.cluster, h.trace, nullptr);
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, ResponseTimelineCoversMakespan) {
  Harness h;
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kNone;
  const RunResult r = Simulator(cfg, *h.cluster, h.trace, nullptr).run();
  ASSERT_FALSE(r.response_timeline.empty());
  std::uint64_t windowed_ops = 0;
  for (const auto& w : r.response_timeline) windowed_ops += w.completed_ops;
  EXPECT_EQ(windowed_ops, r.completed_ops);
  // Last window must contain the makespan.
  EXPECT_GE(r.response_timeline.back().window_start + cfg.response_window_us,
            r.makespan_us);
}

TEST(Simulator, PerOsdStatsMatchClusterState) {
  Harness h;
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kNone;
  const RunResult r = Simulator(cfg, *h.cluster, h.trace, nullptr).run();
  ASSERT_EQ(r.per_osd.size(), h.cluster->num_osds());
  for (OsdId i = 0; i < h.cluster->num_osds(); ++i) {
    EXPECT_EQ(r.per_osd[i].flash.erase_count,
              h.cluster->osd(i).flash_stats().erase_count);
  }
  EXPECT_EQ(r.aggregate_erases(), h.cluster->total_erase_count());
}

TEST(Simulator, MidpointMigrationMovesObjectsWithHdf) {
  Harness h(0.02);
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kForcedMidpoint;
  core::PolicyConfig pcfg;
  pcfg.model = core::WearModel(16, 0.28);  // match the 16-page blocks
  core::HdfPolicy policy(pcfg);
  const RunResult r = Simulator(cfg, *h.cluster, h.trace, &policy).run();
  EXPECT_EQ(r.completed_ops, h.trace.records.size());
  EXPECT_GT(r.migration.moved_objects, 0u);
  EXPECT_EQ(r.migration.moved_objects + r.migration.skipped_objects,
            r.migration.planned_objects);
  EXPECT_EQ(r.migration.remap_table_size, h.cluster->remap().size());
  EXPECT_GE(r.migration.finished_at, r.migration.started_at);
  EXPECT_EQ(h.cluster->migrations_completed(), r.migration.moved_objects);
}

TEST(Simulator, MigratedObjectsLandInSameGroup) {
  Harness h(0.02);
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kForcedMidpoint;
  core::PolicyConfig pcfg;
  pcfg.model = core::WearModel(16, 0.28);
  core::HdfPolicy policy(pcfg);
  Simulator(cfg, *h.cluster, h.trace, &policy).run();
  h.cluster->remap().for_each([&](ObjectId oid, OsdId osd) {
    const auto& p = h.cluster->placement();
    const OsdId home = p.default_osd(p.file_of(oid), p.index_of(oid));
    EXPECT_TRUE(p.same_group(home, osd)) << "oid " << oid;
  });
}

TEST(Simulator, MonitorModeTriggersOnItsOwn) {
  Harness h(0.02);
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kMonitor;
  cfg.epoch_length_us = 100 * 1000;  // tick often at this tiny scale
  cfg.monitor_cooldown_epochs = 2;
  core::PolicyConfig pcfg;
  pcfg.model = core::WearModel(16, 0.28);
  pcfg.lambda = 0.05;  // low bar so the tiny run triggers
  core::HdfPolicy policy(pcfg);
  const RunResult r = Simulator(cfg, *h.cluster, h.trace, &policy).run();
  EXPECT_EQ(r.completed_ops, h.trace.records.size());
  EXPECT_GT(r.migration.triggers, 0u);
}

TEST(Simulator, BuildViewMatchesClusterState) {
  Harness h;
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kNone;
  Simulator sim(cfg, *h.cluster, h.trace, nullptr);
  const auto view = sim.build_view();
  ASSERT_EQ(view.devices.size(), h.cluster->num_osds());
  for (OsdId i = 0; i < h.cluster->num_osds(); ++i) {
    EXPECT_EQ(view.devices[i].id, i);
    EXPECT_DOUBLE_EQ(view.devices[i].utilization,
                     h.cluster->osd(i).utilization());
    EXPECT_EQ(view.devices[i].capacity_pages,
              h.cluster->osd(i).capacity_pages());
    EXPECT_EQ(view.objects[i].size(),
              h.cluster->osd(i).store().object_count());
  }
}

TEST(Simulator, RejectsBadConfig) {
  Harness h;
  SimConfig cfg = h.sim_config();
  cfg.num_clients = 0;
  EXPECT_THROW(Simulator(cfg, *h.cluster, h.trace, nullptr),
               std::invalid_argument);
  cfg = h.sim_config();
  cfg.mover_concurrency = 0;
  EXPECT_THROW(Simulator(cfg, *h.cluster, h.trace, nullptr),
               std::invalid_argument);
}

TEST(Simulator, DeeperClientQueueRaisesThroughput) {
  Harness h1(0.01);
  Harness h2(0.01);
  SimConfig shallow = h1.sim_config();
  shallow.trigger = MigrationTrigger::kNone;
  shallow.client_queue_depth = 1;
  SimConfig deep = shallow;
  deep.client_queue_depth = 8;
  const RunResult a = Simulator(shallow, *h1.cluster, h1.trace, nullptr).run();
  const RunResult b = Simulator(deep, *h2.cluster, h2.trace, nullptr).run();
  EXPECT_GT(b.throughput_ops_per_sec(), a.throughput_ops_per_sec());
}


TEST(Simulator, AdaptiveSigmaLearnsFromObservations) {
  Harness h(0.02);
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kMonitor;
  cfg.epoch_length_us = 100 * 1000;
  cfg.monitor_cooldown_epochs = 2;
  cfg.adaptive_sigma = true;
  core::PolicyConfig pcfg;
  pcfg.model = core::WearModel(16, 0.28);
  pcfg.lambda = 0.05;
  core::HdfPolicy policy(pcfg);
  Simulator sim(cfg, *h.cluster, h.trace, &policy);
  const RunResult r = sim.run();
  EXPECT_EQ(r.completed_ops, h.trace.records.size());
  // The estimator saw real data and produced an in-range sigma that was
  // installed into the policy before planning.
  const double sigma = sim.current_sigma();
  EXPECT_GE(sigma, 0.0);
  EXPECT_LE(sigma, 0.6);
  EXPECT_NE(policy.config().model.sigma(), 0.28);  // refit happened
}

TEST(Simulator, AdaptiveSigmaOffLeavesModelUntouched) {
  Harness h(0.01);
  SimConfig cfg = h.sim_config();
  cfg.trigger = MigrationTrigger::kForcedMidpoint;
  core::PolicyConfig pcfg;
  pcfg.model = core::WearModel(16, 0.28);
  core::HdfPolicy policy(pcfg);
  Simulator(cfg, *h.cluster, h.trace, &policy).run();
  EXPECT_DOUBLE_EQ(policy.config().model.sigma(), 0.28);
}

}  // namespace
}  // namespace edm::sim
