#include "sim/wear_probe.h"

#include <gtest/gtest.h>

namespace edm::sim {
namespace {

WearProbeConfig small_probe(double utilization) {
  WearProbeConfig cfg;
  cfg.flash.num_blocks = 512;
  cfg.flash.pages_per_block = 16;
  cfg.utilization = utilization;
  cfg.churn_multiplier = 2.0;
  return cfg;
}

TEST(WearProbe, AchievesTargetUtilization) {
  for (double u : {0.4, 0.6, 0.8}) {
    const auto r = run_wear_probe(trace::random_profile(), small_probe(u));
    EXPECT_NEAR(r.utilization, u, 0.03) << "target " << u;
  }
}

TEST(WearProbe, MeasuresSteadyStateGc) {
  const auto r = run_wear_probe(trace::random_profile(), small_probe(0.7));
  EXPECT_GT(r.erases, 0u);
  EXPECT_GT(r.measured_ur, 0.0);
  EXPECT_GT(r.write_amplification, 1.0);
}

TEST(WearProbe, RandomWorkloadTracksEq2) {
  const auto r = run_wear_probe(trace::random_profile(), small_probe(0.7));
  EXPECT_NEAR(r.measured_ur, r.eq2_ur, 0.12);
  EXPECT_GT(r.measured_ur, r.eq3_ur);
}

TEST(WearProbe, SkewedWorkloadFallsBelowEq2) {
  // The Fig. 3 headline: real-world (skewed) workloads have much emptier
  // victim blocks than the uniform model predicts.
  const auto random = run_wear_probe(trace::random_profile(), small_probe(0.7));
  const auto skewed =
      run_wear_probe(trace::profile_by_name("lair62"), small_probe(0.7));
  EXPECT_LT(skewed.measured_ur, random.measured_ur - 0.05);
  EXPECT_LT(skewed.write_amplification, random.write_amplification);
}

TEST(WearProbe, UrGrowsWithUtilization) {
  const auto& profile = trace::profile_by_name("home02");
  const auto sweep =
      sweep_wear_probe(profile, small_probe(0.5), {0.5, 0.7, 0.9});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_LT(sweep[0].measured_ur, sweep[1].measured_ur);
  EXPECT_LT(sweep[1].measured_ur, sweep[2].measured_ur);
}

TEST(WearProbe, PredictionColumnsConsistent) {
  const auto r = run_wear_probe(trace::random_profile(), small_probe(0.6));
  EXPECT_GT(r.eq2_ur, r.eq3_ur);  // sigma shifts the curve down
  EXPECT_GT(r.eq2_ur, 0.0);
}

TEST(WearProbe, DeterministicForSameSeed) {
  const auto a = run_wear_probe(trace::profile_by_name("home02"),
                                small_probe(0.7));
  const auto b = run_wear_probe(trace::profile_by_name("home02"),
                                small_probe(0.7));
  EXPECT_EQ(a.erases, b.erases);
  EXPECT_EQ(a.measured_ur, b.measured_ur);
}

}  // namespace
}  // namespace edm::sim
