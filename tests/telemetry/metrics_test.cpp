#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace edm::telemetry {
namespace {

TEST(Metrics, CounterGaugeHistogramBasics) {
  Registry reg;
  Counter* c = reg.counter("sim.ops");
  c->inc();
  c->add(4);
  EXPECT_EQ(c->value(), 5u);

  Gauge* g = reg.gauge("cluster.rsd");
  g->set(0.15);
  EXPECT_DOUBLE_EQ(g->value(), 0.15);

  Histogram* h = reg.histogram("sim.response_us");
  h->observe(100);
  h->observe(200);
  EXPECT_EQ(h->snapshot().count(), 2u);
  EXPECT_EQ(h->snapshot().max(), 200u);
}

TEST(Metrics, GetOrCreateSharesHandles) {
  Registry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);
  a->inc();
  EXPECT_EQ(b->value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, SameNameDifferentKindsAreDistinct) {
  Registry reg;
  reg.counter("n");
  reg.gauge("n");
  reg.histogram("n");
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Metrics, HandlesStableAcrossManyRegistrations) {
  Registry reg;
  Counter* first = reg.counter("c0");
  first->inc();
  // A vector would reallocate here; the registry must not.
  for (int i = 1; i < 1000; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(first, reg.counter("c0"));
  EXPECT_EQ(first->value(), 1u);
}

TEST(Metrics, IterationFollowsRegistrationOrder) {
  Registry reg;
  reg.counter("b");
  reg.counter("a");
  reg.counter("c");
  std::vector<std::string> names;
  reg.for_each_counter(
      [&](const std::string& name, const Counter&) { names.push_back(name); });
  EXPECT_EQ(names, (std::vector<std::string>{"b", "a", "c"}));
}

}  // namespace
}  // namespace edm::telemetry
