#include "telemetry/sampler.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace edm::telemetry {
namespace {

Sampler two_row_sampler() {
  Sampler s(1'000'000);
  SampleRow& r0 = s.add_row(1'000'000);
  r0.inflight_migration_bytes = 4096;
  r0.osds.resize(2);
  r0.osds[0] = {3, 0.5, 120.0, 10};
  r0.osds[1] = {0, 0.25, 60.0, 7};
  SampleRow& r1 = s.add_row(2'000'000);
  r1.osds.resize(2);
  return s;
}

TEST(Sampler, RejectsZeroInterval) {
  EXPECT_THROW(Sampler(0), std::invalid_argument);
}

TEST(Sampler, RowsAccumulateInOrder) {
  const Sampler s = two_row_sampler();
  ASSERT_EQ(s.rows().size(), 2u);
  EXPECT_EQ(s.rows()[0].t, 1'000'000);
  EXPECT_EQ(s.rows()[1].t, 2'000'000);
  EXPECT_EQ(s.rows()[0].osds[0].queue_depth, 3u);
}

TEST(Sampler, CsvHeaderMatchesOsdCount) {
  const Sampler s = two_row_sampler();
  std::ostringstream os;
  s.write_csv(os);
  const std::string out = os.str();
  const std::string header = out.substr(0, out.find('\n'));
  EXPECT_EQ(header,
            "t_us,inflight_migration_bytes,"
            "qd0,util0,load_ewma_us0,erases0,"
            "qd1,util1,load_ewma_us1,erases1");
  // Header + one line per row.
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 1u + s.rows().size());
  EXPECT_NE(out.find("1000000,4096,3,0.5,120,10,0,0.25,60,7"),
            std::string::npos);
}

TEST(Sampler, JsonCarriesSchemaAndInterval) {
  const Sampler s = two_row_sampler();
  std::ostringstream os;
  s.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema\":\"edm-timeseries/1\""), std::string::npos);
  EXPECT_NE(out.find("\"interval_us\":1000000"), std::string::npos);
  EXPECT_NE(out.find("\"t_us\":1000000"), std::string::npos);
  EXPECT_NE(out.find("\"erases\":10"), std::string::npos);
}

TEST(Sampler, NonFiniteValuesClampedInExports) {
  Sampler s(500);
  SampleRow& r = s.add_row(500);
  r.osds.resize(1);
  r.osds[0].utilization = std::numeric_limits<double>::quiet_NaN();
  r.osds[0].load_ewma_us = std::numeric_limits<double>::infinity();
  // "inf" alone would match the inflight_migration_bytes CSV header, so
  // only the data lines (after the header newline) are scanned.
  std::ostringstream csv;
  s.write_csv(csv);
  const std::string data = csv.str().substr(csv.str().find('\n'));
  EXPECT_EQ(data.find("nan"), std::string::npos);
  EXPECT_EQ(data.find("inf"), std::string::npos);
  std::ostringstream json;
  s.write_json(json);
  EXPECT_EQ(json.str().find("nan"), std::string::npos);
  EXPECT_EQ(json.str().find(":inf"), std::string::npos);
}

TEST(Sampler, EmptySamplerStillWritesHeader) {
  Sampler s(1000);
  std::ostringstream os;
  s.write_csv(os);
  EXPECT_EQ(os.str(), "t_us,inflight_migration_bytes\n");
}

TEST(Sampler, RssColumnIsOptIn) {
  // Default: no peak_rss column anywhere -- the digest fixtures depend on
  // the deterministic exports staying exactly as they are.
  const Sampler plain = two_row_sampler();
  std::ostringstream plain_csv;
  plain.write_csv(plain_csv);
  EXPECT_EQ(plain_csv.str().find("peak_rss"), std::string::npos);
  std::ostringstream plain_json;
  plain.write_json(plain_json);
  EXPECT_EQ(plain_json.str().find("peak_rss"), std::string::npos);

  Sampler s(1'000'000, /*rss_column=*/true);
  EXPECT_TRUE(s.rss_column());
  SampleRow& r = s.add_row(1'000'000);
  r.peak_rss_bytes = 123456;
  std::ostringstream csv;
  s.write_csv(csv);
  const std::string header = csv.str().substr(0, csv.str().find('\n'));
  EXPECT_EQ(header, "t_us,inflight_migration_bytes,peak_rss_bytes");
  EXPECT_NE(csv.str().find("1000000,0,123456"), std::string::npos);
  std::ostringstream json;
  s.write_json(json);
  EXPECT_NE(json.str().find("\"peak_rss_bytes\":123456"), std::string::npos);
}

}  // namespace
}  // namespace edm::telemetry
