// End-to-end telemetry through the simulator: determinism of the exported
// streams, the sampler's row-count contract, and presence of the event
// taxonomy in instrumented runs.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "sim/experiment.h"
#include "telemetry/telemetry.h"

namespace edm::sim {
namespace {

ExperimentConfig small_cell(core::PolicyKind policy) {
  ExperimentConfig cfg;
  cfg.trace_name = "home02";
  cfg.scale = 0.004;
  cfg.num_osds = 8;
  cfg.policy = policy;
  return cfg;
}

telemetry::TelemetryConfig full_telemetry() {
  telemetry::TelemetryConfig tc;
  tc.trace_enabled = true;
  tc.metrics_enabled = true;
  tc.sample_interval_us = 700'000;  // deliberately not a divisor of anything
  return tc;
}

TEST(TelemetrySim, DisabledRunCarriesNoRecorder) {
  const RunResult r = run_experiment(small_cell(core::PolicyKind::kHdf));
  EXPECT_EQ(r.telemetry, nullptr);
}

TEST(TelemetrySim, IdenticalRunsProduceBitIdenticalStreams) {
  auto cfg = small_cell(core::PolicyKind::kHdf);
  cfg.telemetry = full_telemetry();
  const RunResult a = run_experiment(cfg);
  const RunResult b = run_experiment(cfg);
  ASSERT_NE(a.telemetry, nullptr);
  ASSERT_NE(b.telemetry, nullptr);

  std::ostringstream trace_a, trace_b;
  a.telemetry->tracer()->write_chrome_json(trace_a);
  b.telemetry->tracer()->write_chrome_json(trace_b);
  EXPECT_GT(trace_a.str().size(), 2u);
  EXPECT_EQ(trace_a.str(), trace_b.str());

  std::ostringstream csv_a, csv_b;
  a.telemetry->sampler()->write_csv(csv_a);
  b.telemetry->sampler()->write_csv(csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
}

TEST(TelemetrySim, SampleRowCountMatchesMakespan) {
  auto cfg = small_cell(core::PolicyKind::kNone);
  cfg.telemetry.sample_interval_us = 700'000;
  const RunResult r = run_experiment(cfg);
  ASSERT_NE(r.telemetry, nullptr);
  const auto* sampler = r.telemetry->sampler();
  ASSERT_NE(sampler, nullptr);
  ASSERT_GT(r.makespan_us, 0);
  // One tick per interval, plus the final tick that observes the idle
  // cluster: ceil(makespan / interval) rows (interval chosen to not divide
  // the makespan exactly).
  ASSERT_NE(r.makespan_us % cfg.telemetry.sample_interval_us, 0);
  const auto expected = static_cast<std::size_t>(
      (r.makespan_us + cfg.telemetry.sample_interval_us - 1) /
      cfg.telemetry.sample_interval_us);
  EXPECT_EQ(sampler->rows().size(), expected);
  // Rows are on-grid and strictly increasing; every row covers the cluster.
  SimTime prev = 0;
  for (const auto& row : sampler->rows()) {
    EXPECT_EQ(row.t % cfg.telemetry.sample_interval_us, 0);
    EXPECT_GT(row.t, prev);
    prev = row.t;
    EXPECT_EQ(row.osds.size(), cfg.num_osds);
  }
}

TEST(TelemetrySim, SamplerSeesMonotoneErases) {
  auto cfg = small_cell(core::PolicyKind::kNone);
  cfg.telemetry.sample_interval_us = 500'000;
  const RunResult r = run_experiment(cfg);
  const auto& rows = r.telemetry->sampler()->rows();
  ASSERT_GE(rows.size(), 2u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    for (std::size_t o = 0; o < rows[i].osds.size(); ++o) {
      EXPECT_GE(rows[i].osds[o].erases, rows[i - 1].osds[o].erases);
    }
  }
}

TEST(TelemetrySim, TraceContainsTaxonomy) {
  auto cfg = small_cell(core::PolicyKind::kHdf);
  cfg.telemetry.trace_enabled = true;
  cfg.telemetry.metrics_enabled = true;
  const RunResult r = run_experiment(cfg);
  const auto* tracer = r.telemetry->tracer();
  ASSERT_NE(tracer, nullptr);

  bool saw_request = false, saw_migration = false, saw_policy = false;
  for (const auto& e : tracer->events()) {
    saw_request |= e.category == telemetry::Category::kRequest;
    saw_migration |= e.category == telemetry::Category::kMigration;
    saw_policy |= e.category == telemetry::Category::kPolicy;
  }
  EXPECT_TRUE(saw_request);   // client op spans
  EXPECT_TRUE(saw_migration); // forced-midpoint HDF moves objects
  EXPECT_TRUE(saw_policy);    // plan() instants
  EXPECT_EQ(tracer->dropped(), 0u);

  // Metrics agree with the run's own accounting.
  const auto* metrics = r.telemetry->metrics();
  ASSERT_NE(metrics, nullptr);
  bool checked = false;
  metrics->for_each_counter(
      [&](const std::string& name, const telemetry::Counter& c) {
        if (name == "sim.ops_completed") {
          EXPECT_EQ(c.value(), r.completed_ops);
          checked = true;
        }
      });
  EXPECT_TRUE(checked);
}

TEST(TelemetrySim, CategoryMaskSuppressesRequestSpans) {
  auto cfg = small_cell(core::PolicyKind::kHdf);
  cfg.telemetry.trace_enabled = true;
  cfg.telemetry.trace_categories =
      telemetry::category_bit(telemetry::Category::kMigration);
  const RunResult r = run_experiment(cfg);
  for (const auto& e : r.telemetry->tracer()->events()) {
    EXPECT_EQ(e.category, telemetry::Category::kMigration);
  }
}

TEST(TelemetrySim, TelemetryDoesNotPerturbTheSimulation) {
  // The recorder observes; it must never change scheduling decisions.
  auto plain = small_cell(core::PolicyKind::kHdf);
  auto traced = plain;
  traced.telemetry = full_telemetry();
  const RunResult a = run_experiment(plain);
  const RunResult b = run_experiment(traced);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.migration.moved_objects, b.migration.moved_objects);
  EXPECT_EQ(a.aggregate_erases(), b.aggregate_erases());
}

}  // namespace
}  // namespace edm::sim
