// Telemetry under the parallel experiment grid: every cell gets its own
// Recorder (thread confinement), so concurrent cells must not share or
// corrupt telemetry state.  Run under the tsan preset by tools/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "sim/experiment.h"
#include "telemetry/telemetry.h"
#include "util/log.h"

namespace edm::sim {
namespace {

ExperimentConfig traced_cell(core::PolicyKind policy) {
  ExperimentConfig cfg;
  cfg.trace_name = "home02";
  cfg.scale = 0.004;
  cfg.num_osds = 8;
  cfg.policy = policy;
  cfg.telemetry.trace_enabled = true;
  cfg.telemetry.metrics_enabled = true;
  cfg.telemetry.sample_interval_us = 700'000;
  return cfg;
}

TEST(TelemetryThread, ParallelGridKeepsRecordersIndependent) {
  // Four concurrent cells, two of them identical: the identical pair must
  // come back with bit-identical telemetry even though they ran on
  // different pool workers, and every cell owns a distinct recorder.
  std::vector<ExperimentConfig> cells = {
      traced_cell(core::PolicyKind::kHdf),
      traced_cell(core::PolicyKind::kCdf),
      traced_cell(core::PolicyKind::kHdf),
      traced_cell(core::PolicyKind::kNone),
  };

  // Exercise the satellite contract: the log threshold is an atomic, so
  // flipping it while pool workers log concurrently must be safe.
  std::atomic<bool> stop{false};
  std::thread flipper([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      util::set_log_level(util::LogLevel::kError);
      util::set_log_level(util::LogLevel::kWarn);
    }
  });

  const auto results = run_grid(cells, /*threads=*/4);
  stop.store(true, std::memory_order_relaxed);
  flipper.join();

  ASSERT_EQ(results.size(), cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_NE(results[i].telemetry, nullptr) << "cell " << i;
    for (std::size_t j = i + 1; j < results.size(); ++j) {
      EXPECT_NE(results[i].telemetry, results[j].telemetry);
    }
  }

  std::ostringstream t0, t2;
  results[0].telemetry->tracer()->write_chrome_json(t0);
  results[2].telemetry->tracer()->write_chrome_json(t2);
  EXPECT_EQ(t0.str(), t2.str());

  std::ostringstream c0, c2;
  results[0].telemetry->sampler()->write_csv(c0);
  results[2].telemetry->sampler()->write_csv(c2);
  EXPECT_EQ(c0.str(), c2.str());
}

}  // namespace
}  // namespace edm::sim
