#include "telemetry/tracer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace edm::telemetry {
namespace {

TEST(Tracer, RecordsCompleteAndInstantEvents) {
  Tracer tracer(kAllCategories, 100);
  tracer.complete(Category::kRequest, "op", track_client(0), 10, 5);
  tracer.instant(Category::kFault, "osd_fail", track_fault(), 42, "osd", 3.0);
  ASSERT_EQ(tracer.events().size(), 2u);

  const TraceEvent& span = tracer.events()[0];
  EXPECT_STREQ(span.name, "op");
  EXPECT_EQ(span.phase, 'X');
  EXPECT_EQ(span.ts, 10);
  EXPECT_EQ(span.dur, 5);
  EXPECT_EQ(span.num_args, 0);

  const TraceEvent& inst = tracer.events()[1];
  EXPECT_EQ(inst.phase, 'i');
  EXPECT_EQ(inst.num_args, 1);
  EXPECT_STREQ(inst.arg_key[0], "osd");
  EXPECT_DOUBLE_EQ(inst.arg_val[0], 3.0);
}

TEST(Tracer, CategoryMaskFilters) {
  Tracer tracer(category_bit(Category::kGc), 100);
  EXPECT_TRUE(tracer.enabled(Category::kGc));
  EXPECT_FALSE(tracer.enabled(Category::kRequest));
  tracer.complete(Category::kRequest, "op", 1, 0, 1);
  tracer.complete(Category::kGc, "gc", 1, 0, 1);
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_STREQ(tracer.events()[0].name, "gc");
  // Masked-out events are filtered, not dropped-for-capacity.
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, CapCountsDropped) {
  Tracer tracer(kAllCategories, 2);
  for (int i = 0; i < 5; ++i) {
    tracer.instant(Category::kPolicy, "tick", track_policy(), i);
  }
  EXPECT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(Tracer, TrackIdsAreDisjoint) {
  EXPECT_NE(track_osd(0), track_client(0));
  EXPECT_NE(track_client(0), track_mover(0));
  EXPECT_NE(track_mover(0), track_rebuild(0));
  EXPECT_NE(track_rebuild(0), track_policy());
  EXPECT_NE(track_policy(), track_fault());
}

TEST(Tracer, CategoryNamesDistinct) {
  EXPECT_STRNE(category_name(Category::kRequest),
               category_name(Category::kGc));
  EXPECT_STRNE(category_name(Category::kMigration),
               category_name(Category::kFault));
}

TEST(Tracer, ChromeJsonShape) {
  Tracer tracer(kAllCategories, 100);
  tracer.name_track(track_osd(0), "osd0");
  tracer.complete(Category::kGc, "gc", track_osd(0), 100, 7, "moves", 12.0);
  tracer.instant(Category::kPolicy, "plan", track_policy(), 200, "signal",
                 0.25, "actions", 3.0);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string out = os.str();

  // Top-level object with a traceEvents array.
  EXPECT_EQ(out.find("{\"traceEvents\":["), 0u);
  // Thread-name metadata precedes the events.
  const auto meta = out.find("\"ph\":\"M\"");
  const auto span = out.find("\"ph\":\"X\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(span, std::string::npos);
  EXPECT_LT(meta, span);
  EXPECT_NE(out.find("\"osd0\""), std::string::npos);
  // Complete event carries ts + dur and its args.
  EXPECT_NE(out.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":7"), std::string::npos);
  EXPECT_NE(out.find("\"moves\":12"), std::string::npos);
  // Instant event and its two args.
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"signal\":0.25"), std::string::npos);
  EXPECT_NE(out.find("\"actions\":3"), std::string::npos);
  // Categories exported by name.
  EXPECT_NE(out.find(category_name(Category::kGc)), std::string::npos);
}

TEST(Tracer, ChromeJsonBalancedAndNoTrailingCommas) {
  Tracer tracer(kAllCategories, 100);
  tracer.name_track(track_client(1), "client1");
  for (int i = 0; i < 10; ++i) {
    tracer.complete(Category::kRequest, "op", track_client(1), i * 10, 4);
  }
  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string out = os.str();
  int depth = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : out) {
    if (in_string) {
      if (c == '"' && prev != '\\') in_string = false;
    } else {
      if (c == '"') in_string = true;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        --depth;
        EXPECT_NE(prev, ',') << "trailing comma before " << c;
      }
      ASSERT_GE(depth, 0);
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev = c;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace edm::telemetry
