#include "trace/analysis.h"

#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/profile.h"

namespace edm::trace {
namespace {

Trace make_trace(std::vector<Record> records,
                 std::vector<FileSpec> files) {
  Trace t;
  t.name = "synthetic";
  t.files = std::move(files);
  t.records = std::move(records);
  return t;
}

TEST(Analysis, EmptyTrace) {
  const auto a = analyze_skew(Trace{});
  EXPECT_EQ(a.write_top1_share, 0.0);
  EXPECT_EQ(a.write_gini, 0.0);
}

TEST(Analysis, UniformWritesHaveLowGini) {
  std::vector<FileSpec> files;
  std::vector<Record> records;
  for (FileId f = 0; f < 100; ++f) {
    files.push_back({f, 1 << 20});
    records.push_back({f, 0, 4096, OpType::kWrite, 0});
  }
  const auto a = analyze_skew(make_trace(records, files));
  EXPECT_LT(a.write_gini, 0.05);
  EXPECT_NEAR(a.write_top10_share, 0.10, 0.02);
}

TEST(Analysis, SingleHotFileHasHighGini) {
  std::vector<FileSpec> files;
  for (FileId f = 0; f < 100; ++f) files.push_back({f, 1 << 20});
  std::vector<Record> records;
  for (int i = 0; i < 1000; ++i) {
    records.push_back({0, static_cast<std::uint64_t>(i % 16) * 4096, 4096,
                       OpType::kWrite, 0});
  }
  const auto a = analyze_skew(make_trace(records, files));
  EXPECT_GT(a.write_gini, 0.95);
  EXPECT_NEAR(a.write_top1_share, 1.0, 1e-9);
}

TEST(Analysis, RewriteRatioDetectsOverwrites) {
  std::vector<FileSpec> files = {{0, 1 << 20}};
  std::vector<Record> fresh;
  std::vector<Record> rewriting;
  for (int i = 0; i < 100; ++i) {
    fresh.push_back({0, static_cast<std::uint64_t>(i) * 4096, 4096,
                     OpType::kWrite, 0});
    rewriting.push_back({0, 0, 4096, OpType::kWrite, 0});
  }
  EXPECT_EQ(analyze_skew(make_trace(fresh, files)).write_rewrite_ratio, 0.0);
  // First write is fresh, the other 99 rewrite page 0.
  EXPECT_NEAR(analyze_skew(make_trace(rewriting, files)).write_rewrite_ratio,
              0.99, 1e-9);
}

TEST(Analysis, SequentialRatio) {
  std::vector<FileSpec> files = {{0, 1 << 20}};
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back({0, static_cast<std::uint64_t>(i) * 4096, 4096,
                       OpType::kRead, 0});
  }
  // 9 of 10 continue from the previous end offset.
  EXPECT_NEAR(analyze_skew(make_trace(records, files)).sequential_ratio, 0.9,
              1e-9);
}

TEST(Analysis, CorrelationSignsAreRight) {
  std::vector<FileSpec> files;
  for (FileId f = 0; f < 50; ++f) files.push_back({f, 1 << 20});
  // Aligned: file f gets f writes and f reads.
  std::vector<Record> aligned;
  for (FileId f = 0; f < 50; ++f) {
    for (FileId i = 0; i <= f; ++i) {
      aligned.push_back({f, 0, 4096, OpType::kWrite, 0});
      aligned.push_back({f, 0, 4096, OpType::kRead, 0});
    }
  }
  EXPECT_GT(analyze_skew(make_trace(aligned, files)).read_write_correlation,
            0.95);
  // Opposed: file f gets f writes but (50-f) reads.
  std::vector<Record> opposed;
  for (FileId f = 0; f < 50; ++f) {
    for (FileId i = 0; i <= f; ++i) {
      opposed.push_back({f, 0, 4096, OpType::kWrite, 0});
    }
    for (FileId i = f; i < 50; ++i) {
      opposed.push_back({f, 0, 4096, OpType::kRead, 0});
    }
  }
  EXPECT_LT(analyze_skew(make_trace(opposed, files)).read_write_correlation,
            -0.9);
}

TEST(Analysis, GeneratedProfilesMatchTheirCalibrationIntent) {
  const auto home = analyze_skew(
      TraceGenerator(profile_by_name("home02").scaled(0.02), 4).generate());
  const auto random = analyze_skew(
      TraceGenerator(random_profile().scaled(0.1), 4).generate());

  // The skewed profile concentrates writes and rewrites hot pages; the
  // random workload does neither.
  EXPECT_GT(home.write_top10_share, 0.35);
  EXPECT_GT(home.write_rewrite_ratio, 0.5);
  EXPECT_LT(random.write_top10_share, 0.15);
  // Reads and writes correlate (jittered shared popularity ranking).
  EXPECT_GT(home.read_write_correlation, 0.2);
  // Heavy-tailed file sizes for home02, fixed sizes for random.
  EXPECT_GT(home.size_max_over_mean, 10.0);
  EXPECT_LT(random.size_max_over_mean, 1.5);
}

}  // namespace
}  // namespace edm::trace
