// Differential tests: the streaming pipeline (RecordStream / TraceCursor)
// must emit the byte-identical record sequence TraceGenerator::generate()
// materialises -- over every Table I profile, record for record.
#include "trace/cursor.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "trace/generator.h"
#include "trace/profile.h"

namespace edm::trace {
namespace {

bool same_record(const Record& a, const Record& b) {
  return a.file == b.file && a.offset == b.offset && a.size == b.size &&
         a.op == b.op && a.client == b.client;
}

// Scaled-down copies of the Table I workloads: the differential property is
// per-record, so a few tens of thousands of records per profile exercise
// every code path (hot-region writes, offset zipf, sequential wrap) without
// minutes of runtime.
std::vector<WorkloadProfile> scaled_table1() {
  std::vector<WorkloadProfile> out;
  for (const WorkloadProfile& p : table1_profiles()) {
    out.push_back(p.scaled(0.02));
  }
  return out;
}

TEST(RecordStream, MatchesGenerateOnAllTable1Profiles) {
  for (const WorkloadProfile& profile : scaled_table1()) {
    const Trace trace = TraceGenerator(profile, 8).generate();
    RecordStream stream(profile, 8);
    ASSERT_EQ(stream.files().size(), trace.files.size()) << profile.name;
    for (std::size_t f = 0; f < trace.files.size(); ++f) {
      ASSERT_EQ(stream.files()[f].id, trace.files[f].id) << profile.name;
      ASSERT_EQ(stream.files()[f].size_bytes, trace.files[f].size_bytes)
          << profile.name;
    }
    Record rec;
    std::size_t i = 0;
    while (stream.next(rec)) {
      ASSERT_LT(i, trace.records.size()) << profile.name;
      ASSERT_TRUE(same_record(rec, trace.records[i]))
          << profile.name << " diverges at record " << i;
      ++i;
    }
    EXPECT_EQ(i, trace.records.size()) << profile.name;
    // Exhausted streams stay exhausted.
    EXPECT_FALSE(stream.next(rec)) << profile.name;
  }
}

TEST(RecordStream, MatchesGenerateOnRandomProfile) {
  const WorkloadProfile profile = random_profile().scaled(0.05);
  const Trace trace = TraceGenerator(profile, 4).generate();
  RecordStream stream(profile, 4);
  Record rec;
  std::size_t i = 0;
  while (stream.next(rec)) {
    ASSERT_TRUE(same_record(rec, trace.records[i])) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, trace.records.size());
}

// Round-robin lane consumption must reassemble exactly the per-lane
// subsequences of the materialised trace.
TEST(TraceCursor, RoundRobinLanesMatchGenerate) {
  const WorkloadProfile profile = table1_profiles()[0].scaled(0.02);
  const std::uint16_t kLanes = 8;
  const Trace trace = TraceGenerator(profile, kLanes).generate();
  std::vector<std::vector<Record>> expected(kLanes);
  for (const Record& r : trace.records) {
    expected[r.client % kLanes].push_back(r);
  }

  TraceCursor cursor(profile, kLanes);
  EXPECT_EQ(cursor.lanes(), kLanes);
  std::vector<std::size_t> pos(kLanes, 0);
  std::uint16_t exhausted = 0;
  std::vector<bool> done(kLanes, false);
  Record rec;
  while (exhausted < kLanes) {
    for (std::uint16_t lane = 0; lane < kLanes; ++lane) {
      if (done[lane]) continue;
      if (!cursor.next(lane, rec)) {
        EXPECT_EQ(pos[lane], expected[lane].size()) << "lane " << lane;
        done[lane] = true;
        ++exhausted;
        continue;
      }
      ASSERT_LT(pos[lane], expected[lane].size()) << "lane " << lane;
      ASSERT_TRUE(same_record(rec, expected[lane][pos[lane]]))
          << "lane " << lane << " record " << pos[lane];
      ++pos[lane];
    }
  }
}

// Maximally skewed consumption -- drain lane 0 completely before touching
// the others -- still yields every lane's full subsequence (the cursor
// buffers what the draining lane skips past).
TEST(TraceCursor, SkewedConsumptionStillCompleteAndOrdered) {
  const WorkloadProfile profile = table1_profiles()[3].scaled(0.01);
  const std::uint16_t kLanes = 4;
  const Trace trace = TraceGenerator(profile, kLanes).generate();
  std::vector<std::vector<Record>> expected(kLanes);
  for (const Record& r : trace.records) {
    expected[r.client % kLanes].push_back(r);
  }

  TraceCursor cursor(profile, kLanes);
  Record rec;
  for (std::uint16_t lane = 0; lane < kLanes; ++lane) {
    std::size_t i = 0;
    while (cursor.next(lane, rec)) {
      ASSERT_LT(i, expected[lane].size());
      ASSERT_TRUE(same_record(rec, expected[lane][i]))
          << "lane " << lane << " record " << i;
      ++i;
    }
    EXPECT_EQ(i, expected[lane].size()) << "lane " << lane;
  }
  // Draining lane 0 first forces the cursor to buffer every record of the
  // other lanes: the high-water mark is visible and bounded by the trace.
  EXPECT_GT(cursor.max_lookahead(), 0u);
  EXPECT_LT(cursor.max_lookahead(), trace.records.size());
}

TEST(TraceCursor, TotalRecordsMatchesGenerateWithoutDisturbingPosition) {
  const WorkloadProfile profile = table1_profiles()[5].scaled(0.02);
  const Trace trace = TraceGenerator(profile, 8).generate();
  TraceCursor cursor(profile, 8);
  Record first_before;
  ASSERT_TRUE(cursor.next(0, first_before));
  // The counting pre-pass runs on an independent stream.
  EXPECT_EQ(cursor.total_records(), trace.records.size());
  EXPECT_EQ(cursor.total_records(), trace.records.size());  // cached
  Record second;
  ASSERT_TRUE(cursor.next(0, second));
  EXPECT_FALSE(same_record(first_before, second) &&
               trace.records.size() < 2);
}

// Balanced consumption (what the closed-loop simulator does) keeps the
// lookahead to session-burst skew, not a fraction of the trace.
TEST(TraceCursor, BalancedConsumptionHasSmallLookahead) {
  const WorkloadProfile profile = table1_profiles()[0].scaled(0.02);
  const std::uint16_t kLanes = 8;
  TraceCursor cursor(profile, kLanes);
  const std::uint64_t total = cursor.total_records();
  Record rec;
  std::uint16_t exhausted = 0;
  std::vector<bool> done(kLanes, false);
  while (exhausted < kLanes) {
    for (std::uint16_t lane = 0; lane < kLanes; ++lane) {
      if (!done[lane] && !cursor.next(lane, rec)) {
        done[lane] = true;
        ++exhausted;
      }
    }
  }
  // Round-robin consumption: the buffers hold session-burst skew (records
  // arrive per-lane in session-sized runs, so each lane queues a few
  // sessions' worth) -- a few percent of the trace, not O(total).
  EXPECT_LE(cursor.max_lookahead(), total / 10);
}

TEST(TraceCursor, FilesAvailableBeforeAnyRecordIsPulled) {
  const WorkloadProfile profile = table1_profiles()[1].scaled(0.01);
  const Trace trace = TraceGenerator(profile, 8).generate();
  TraceCursor cursor(profile, 8);
  ASSERT_EQ(cursor.files().size(), trace.files.size());
  EXPECT_EQ(cursor.name(), trace.name);
  for (std::size_t f = 0; f < trace.files.size(); ++f) {
    EXPECT_EQ(cursor.files()[f].size_bytes, trace.files[f].size_bytes);
  }
}

}  // namespace
}  // namespace edm::trace
