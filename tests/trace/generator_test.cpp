#include "trace/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/profile.h"

namespace edm::trace {
namespace {

WorkloadProfile small_profile() {
  return profile_by_name("home02").scaled(0.02);
}

TEST(TraceGenerator, DeterministicForSameProfile) {
  const TraceGenerator gen(small_profile(), 4);
  const Trace a = gen.generate();
  const Trace b = gen.generate();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(a.records[i].file, b.records[i].file);
    ASSERT_EQ(a.records[i].offset, b.records[i].offset);
    ASSERT_EQ(a.records[i].size, b.records[i].size);
    ASSERT_EQ(a.records[i].op, b.records[i].op);
  }
}

TEST(TraceGenerator, OpCountsMatchProfileExactly) {
  const auto profile = small_profile();
  const Trace t = TraceGenerator(profile, 4).generate();
  const auto c = characterize(t);
  EXPECT_EQ(c.write_count, profile.write_count);
  EXPECT_EQ(c.read_count, profile.read_count);
  EXPECT_EQ(c.file_count, profile.file_count);
  EXPECT_EQ(c.open_count, c.close_count);
}

TEST(TraceGenerator, MeanRequestSizesNearTargets) {
  const auto profile = profile_by_name("home02").scaled(0.05);
  const auto c = characterize(TraceGenerator(profile, 4).generate());
  EXPECT_NEAR(c.avg_write_size, profile.avg_write_size,
              0.12 * profile.avg_write_size);
  EXPECT_NEAR(c.avg_read_size, profile.avg_read_size,
              0.12 * profile.avg_read_size);
}

TEST(TraceGenerator, RequestsStayWithinFileBounds) {
  const Trace t = TraceGenerator(small_profile(), 4).generate();
  std::map<FileId, std::uint64_t> sizes;
  for (const auto& f : t.files) sizes[f.id] = f.size_bytes;
  for (const auto& r : t.records) {
    if (r.op == OpType::kRead || r.op == OpType::kWrite) {
      ASSERT_LE(r.offset + r.size, sizes.at(r.file))
          << "file " << r.file << " off " << r.offset << " size " << r.size;
      ASSERT_GT(r.size, 0u);
    }
  }
}

TEST(TraceGenerator, SessionsAreBracketedByOpenClose) {
  const Trace t = TraceGenerator(small_profile(), 4).generate();
  // Per client lane, records alternate open ... ops ... close on one file.
  std::map<std::uint16_t, FileId> open_file;
  std::map<std::uint16_t, bool> in_session;
  for (const auto& r : t.records) {
    switch (r.op) {
      case OpType::kOpen:
        ASSERT_FALSE(in_session[r.client]);
        in_session[r.client] = true;
        open_file[r.client] = r.file;
        break;
      case OpType::kClose:
        ASSERT_TRUE(in_session[r.client]);
        ASSERT_EQ(open_file[r.client], r.file);
        in_session[r.client] = false;
        break;
      default:
        ASSERT_TRUE(in_session[r.client]);
        ASSERT_EQ(open_file[r.client], r.file);
    }
  }
}

TEST(TraceGenerator, ClientsAssignedRoundRobinOverSessions) {
  const Trace t = TraceGenerator(small_profile(), 4).generate();
  std::set<std::uint16_t> clients;
  for (const auto& r : t.records) clients.insert(r.client);
  EXPECT_EQ(clients.size(), 4u);
}

TEST(TraceGenerator, WriteMixIsStationaryAcrossTheTrace) {
  // The paper's midpoint-shuffle experiment needs writes in BOTH halves;
  // a naive generator depletes the write quota early.
  const auto profile = profile_by_name("home02").scaled(0.05);
  const Trace t = TraceGenerator(profile, 4).generate();
  std::uint64_t first_half_writes = 0;
  std::uint64_t second_half_writes = 0;
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    if (t.records[i].op == OpType::kWrite) {
      (i < t.records.size() / 2 ? first_half_writes : second_half_writes)++;
    }
  }
  const double ratio = static_cast<double>(first_half_writes) /
                       static_cast<double>(second_half_writes);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(TraceGenerator, WritePopularityIsSkewedForHomeProfiles) {
  const Trace t = TraceGenerator(small_profile(), 4).generate();
  std::map<FileId, std::uint64_t> write_bytes;
  std::uint64_t total = 0;
  for (const auto& r : t.records) {
    if (r.op == OpType::kWrite) {
      write_bytes[r.file] += r.size;
      total += r.size;
    }
  }
  // Top 1% of files should hold a disproportionate share of write bytes.
  std::vector<std::uint64_t> by_file;
  for (const auto& [f, b] : write_bytes) by_file.push_back(b);
  std::sort(by_file.rbegin(), by_file.rend());
  const std::size_t top = std::max<std::size_t>(1, t.files.size() / 100);
  std::uint64_t top_bytes = 0;
  for (std::size_t i = 0; i < top && i < by_file.size(); ++i) {
    top_bytes += by_file[i];
  }
  EXPECT_GT(static_cast<double>(top_bytes) / static_cast<double>(total), 0.15);
}

TEST(TraceGenerator, RandomProfileIsUnskewed) {
  auto profile = random_profile();
  profile.file_count = 512;
  profile.write_count = 20000;
  profile.read_count = 20000;
  const Trace t = TraceGenerator(profile, 4).generate();
  std::map<FileId, std::uint64_t> touches;
  for (const auto& r : t.records) {
    if (r.op == OpType::kWrite) touches[r.file]++;
  }
  std::vector<std::uint64_t> counts;
  for (const auto& [f, c] : touches) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  // Uniform popularity: the hottest file should hold well under 2% of ops.
  EXPECT_LT(static_cast<double>(counts.front()) / 20000.0, 0.02);
}

TEST(TraceGenerator, FileSizesHeavyTailed) {
  const Trace t = TraceGenerator(profile_by_name("lair62").scaled(0.05), 4)
                      .generate();
  std::uint64_t max_size = 0;
  std::uint64_t total = 0;
  for (const auto& f : t.files) {
    max_size = std::max(max_size, f.size_bytes);
    total += f.size_bytes;
    ASSERT_GE(f.size_bytes, 8u * 1024u);
  }
  const double mean = static_cast<double>(total) / t.files.size();
  EXPECT_GT(static_cast<double>(max_size), 20.0 * mean);
}

class GeneratorAllProfiles : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorAllProfiles, GeneratesValidTraceAtTinyScale) {
  const auto profile = profile_by_name(GetParam()).scaled(0.01);
  const Trace t = TraceGenerator(profile, 4).generate();
  const auto c = characterize(t);
  EXPECT_EQ(c.write_count, profile.write_count);
  EXPECT_EQ(c.read_count, profile.read_count);
  EXPECT_GT(t.total_file_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, GeneratorAllProfiles,
                         ::testing::Values("home02", "home03", "home04",
                                           "deasna", "deasna2", "lair62",
                                           "lair62b", "random"));

}  // namespace
}  // namespace edm::trace
