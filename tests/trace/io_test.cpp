#include "trace/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.h"
#include "trace/profile.h"

namespace edm::trace {
namespace {

Trace sample_trace() {
  return TraceGenerator(profile_by_name("home02").scaled(0.005), 3)
      .generate();
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  save_trace(original, buffer);
  const Trace loaded = load_trace(buffer);

  EXPECT_EQ(loaded.name, original.name);
  ASSERT_EQ(loaded.files.size(), original.files.size());
  for (std::size_t i = 0; i < original.files.size(); ++i) {
    EXPECT_EQ(loaded.files[i].id, original.files[i].id);
    EXPECT_EQ(loaded.files[i].size_bytes, original.files[i].size_bytes);
  }
  ASSERT_EQ(loaded.records.size(), original.records.size());
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    EXPECT_EQ(loaded.records[i].file, original.records[i].file);
    EXPECT_EQ(loaded.records[i].offset, original.records[i].offset);
    EXPECT_EQ(loaded.records[i].size, original.records[i].size);
    EXPECT_EQ(loaded.records[i].op, original.records[i].op);
    EXPECT_EQ(loaded.records[i].client, original.records[i].client);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace empty;
  empty.name = "empty";
  std::stringstream buffer;
  save_trace(empty, buffer);
  const Trace loaded = load_trace(buffer);
  EXPECT_EQ(loaded.name, "empty");
  EXPECT_TRUE(loaded.files.empty());
  EXPECT_TRUE(loaded.records.empty());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer("NOTATRACE_______________");
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedStream) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  save_trace(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_trace(truncated), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownVersion) {
  Trace empty;
  empty.name = "v";
  std::stringstream buffer;
  save_trace(empty, buffer);
  std::string bytes = buffer.str();
  bytes[8] = 99;  // version field follows the 8-byte magic
  std::stringstream bad(bytes);
  EXPECT_THROW(load_trace(bad), std::runtime_error);
}

TEST(TraceIo, FileHelpersWork) {
  const Trace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/edm_trace_test.bin";
  save_trace_file(original, path);
  const Trace loaded = load_trace_file(path);
  EXPECT_EQ(loaded.records.size(), original.records.size());
  EXPECT_EQ(loaded.name, original.name);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_file("/nonexistent/path/trace.bin"),
               std::runtime_error);
}

// Streaming writer + reader round-trip, record for record, and the bytes
// are identical to the whole-trace save_trace path (same format).
TEST(TraceIo, StreamingRoundTripMatchesWholeTracePath) {
  const Trace original = sample_trace();
  std::stringstream whole;
  save_trace(original, whole);

  std::stringstream streamed;
  {
    TraceWriter writer(streamed, original.name, original.files);
    for (const auto& r : original.records) writer.append(r);
    writer.finish();
    EXPECT_EQ(writer.records_written(), original.records.size());
  }
  EXPECT_EQ(streamed.str(), whole.str());

  TraceReader reader(streamed);
  EXPECT_EQ(reader.name(), original.name);
  EXPECT_EQ(reader.record_count(), original.records.size());
  ASSERT_EQ(reader.files().size(), original.files.size());
  Record r;
  std::size_t i = 0;
  while (reader.next(r)) {
    ASSERT_LT(i, original.records.size());
    EXPECT_EQ(r.file, original.records[i].file);
    EXPECT_EQ(r.offset, original.records[i].offset);
    EXPECT_EQ(r.size, original.records[i].size);
    EXPECT_EQ(r.op, original.records[i].op);
    EXPECT_EQ(r.client, original.records[i].client);
    ++i;
  }
  EXPECT_EQ(i, original.records.size());
  EXPECT_FALSE(reader.next(r));  // stays exhausted
}

// Chunk-boundary cases: record counts straddling the chunk size.
TEST(TraceIo, StreamingChunkBoundaries) {
  for (const std::size_t n :
       {std::size_t{0}, TraceWriter::kChunkRecords - 1,
        TraceWriter::kChunkRecords, TraceWriter::kChunkRecords + 1,
        2 * TraceWriter::kChunkRecords + 7}) {
    std::stringstream buffer;
    {
      TraceWriter writer(buffer, "chunky", {});
      for (std::size_t i = 0; i < n; ++i) {
        writer.append({static_cast<FileId>(i), i * 17, 512, OpType::kWrite,
                       static_cast<std::uint16_t>(i % 5)});
      }
      writer.finish();
    }
    TraceReader reader(buffer);
    EXPECT_EQ(reader.record_count(), n);
    Record r;
    std::size_t i = 0;
    while (reader.next(r)) {
      EXPECT_EQ(r.file, static_cast<FileId>(i));
      EXPECT_EQ(r.offset, i * 17);
      ++i;
    }
    EXPECT_EQ(i, n) << "chunk-count " << n;
  }
}

// Error-path contract: the three corruption classes -- wrong magic,
// truncation inside the header, and a short final record chunk -- must
// produce distinct messages so a caller (or a human reading a failed
// replay log) can tell what actually broke.
std::string thrown_message(const std::string& bytes) {
  std::stringstream buffer(bytes);
  try {
    load_trace(buffer);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(TraceIo, BadMagicErrorIsDistinct) {
  const std::string msg = thrown_message("NOTATRACE_______________");
  EXPECT_NE(msg.find("not an EDM trace stream"), std::string::npos) << msg;
}

TEST(TraceIo, TruncatedHeaderErrorIsDistinct) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  save_trace(original, buffer);
  // Cut inside the fixed header: past the 8-byte magic, mid-version.
  const std::string msg = thrown_message(buffer.str().substr(0, 10));
  EXPECT_NE(msg.find("trace header truncated"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("not an EDM trace stream"), std::string::npos);
  EXPECT_EQ(msg.find("chunk"), std::string::npos);
}

TEST(TraceIo, ShortFinalChunkErrorIsDistinct) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  save_trace(original, buffer);
  // Drop half a record off the tail: the header (including the record
  // count) parses fine, but the last chunk comes up short.
  const std::string full = buffer.str();
  const std::string msg = thrown_message(full.substr(0, full.size() - 12));
  EXPECT_NE(msg.find("trace chunk truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("records read"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("header"), std::string::npos);
}

TEST(TraceIo, StreamingReaderRejectsTruncatedRecords) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  save_trace(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 10));
  TraceReader reader(truncated);  // header + count parse fine
  Record r;
  EXPECT_THROW(
      {
        while (reader.next(r)) {
        }
      },
      std::runtime_error);
}

}  // namespace
}  // namespace edm::trace
