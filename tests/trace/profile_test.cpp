#include "trace/profile.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace edm::trace {
namespace {

TEST(Profiles, Table1HasSevenWorkloadsInPaperOrder) {
  const auto profiles = table1_profiles();
  ASSERT_EQ(profiles.size(), 7u);
  const char* expected[] = {"home02", "home03", "home04", "deasna",
                            "deasna2", "lair62", "lair62b"};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(profiles[i].name, expected[i]);
  }
}

TEST(Profiles, Table1StatisticsMatchPaper) {
  // Spot-check the published numbers verbatim (Table I).
  const auto& home02 = profile_by_name("home02");
  EXPECT_EQ(home02.file_count, 10931u);
  EXPECT_EQ(home02.write_count, 730602u);
  EXPECT_EQ(home02.avg_write_size, 8048u);
  EXPECT_EQ(home02.read_count, 3497486u);
  EXPECT_EQ(home02.avg_read_size, 8191u);

  const auto& deasna = profile_by_name("deasna");
  EXPECT_EQ(deasna.file_count, 9727u);
  EXPECT_EQ(deasna.write_count, 232481u);
  EXPECT_EQ(deasna.avg_write_size, 24167u);

  const auto& lair62b = profile_by_name("lair62b");
  EXPECT_EQ(lair62b.file_count, 27228u);
  EXPECT_EQ(lair62b.read_count, 736469u);
  EXPECT_EQ(lair62b.avg_read_size, 7612u);
}

TEST(Profiles, RandomWorkloadMatchesPaperDescription) {
  const auto& random = random_profile();
  // "each request size is ranging from 4KB to 16KB": mean 10 KB with our
  // uniform [avg/2, 3avg/2] sampler.
  EXPECT_EQ(random.avg_write_size, 10u * 1024u);
  EXPECT_EQ(random.write_zipf, 0.0);
  EXPECT_EQ(random.read_zipf, 0.0);
  EXPECT_EQ(random.sequential_locality, 0.0);
  EXPECT_EQ(random.write_hot_bias, 0.0);
}

TEST(Profiles, LookupUnknownThrows) {
  EXPECT_THROW(profile_by_name("nope"), std::out_of_range);
}

TEST(Profiles, LookupRandom) {
  EXPECT_EQ(profile_by_name("random").name, "random");
}

TEST(Profiles, ScaledMultipliesCounts) {
  const auto scaled = profile_by_name("home02").scaled(0.1);
  EXPECT_EQ(scaled.file_count, 1093u);
  EXPECT_EQ(scaled.write_count, 73060u);
  EXPECT_EQ(scaled.read_count, 349749u);
  // Non-count knobs untouched.
  EXPECT_EQ(scaled.avg_write_size, 8048u);
  EXPECT_EQ(scaled.write_zipf, profile_by_name("home02").write_zipf);
}

TEST(Profiles, ScaledNeverDropsToZero) {
  const auto scaled = profile_by_name("home02").scaled(1e-9);
  EXPECT_GE(scaled.file_count, 1u);
  EXPECT_GE(scaled.write_count, 1u);
  EXPECT_GE(scaled.read_count, 1u);
}

TEST(Profiles, ScaledRejectsNonPositive) {
  EXPECT_THROW(profile_by_name("home02").scaled(0.0), std::invalid_argument);
  EXPECT_THROW(profile_by_name("home02").scaled(-1.0), std::invalid_argument);
}

TEST(Profiles, DistinctSeedsPerWorkload) {
  const auto profiles = table1_profiles();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = i + 1; j < profiles.size(); ++j) {
      EXPECT_NE(profiles[i].seed, profiles[j].seed);
    }
  }
}

}  // namespace
}  // namespace edm::trace
