#include "trace/text_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.h"
#include "trace/profile.h"

namespace edm::trace {
namespace {

TEST(TextIo, ParsesBasicFormat) {
  std::istringstream in(R"(# a tiny trace
file 0 65536
file 1 131072

open 0 3
write 0 0 4096 3
read 0 4096 8192 3
close 0 3
read 1 0 4096
)");
  const Trace t = load_text_trace(in, "tiny");
  EXPECT_EQ(t.name, "tiny");
  ASSERT_EQ(t.files.size(), 2u);
  EXPECT_EQ(t.files[1].size_bytes, 131072u);
  ASSERT_EQ(t.records.size(), 5u);
  EXPECT_EQ(t.records[0].op, OpType::kOpen);
  EXPECT_EQ(t.records[0].client, 3u);
  EXPECT_EQ(t.records[1].op, OpType::kWrite);
  EXPECT_EQ(t.records[1].size, 4096u);
  EXPECT_EQ(t.records[2].offset, 4096u);
  EXPECT_EQ(t.records[4].file, 1u);
}

TEST(TextIo, CaseInsensitiveKeywords) {
  std::istringstream in("file 0 8192\nREAD 0 0 4096\nWrite 0 0 512\n");
  const Trace t = load_text_trace(in);
  ASSERT_EQ(t.records.size(), 2u);
  EXPECT_EQ(t.records[0].op, OpType::kRead);
  EXPECT_EQ(t.records[1].op, OpType::kWrite);
}

TEST(TextIo, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "\n# header\nfile 0 8192  # trailing comment\n\nread 0 0 512\n");
  const Trace t = load_text_trace(in);
  EXPECT_EQ(t.records.size(), 1u);
}

TEST(TextIo, RejectsMalformedInput) {
  auto expect_fail = [](const std::string& body, const char* what) {
    std::istringstream in(body);
    EXPECT_THROW(load_text_trace(in), std::runtime_error) << what;
  };
  expect_fail("bogus 1 2 3\n", "unknown keyword");
  expect_fail("file 0\n", "missing size");
  expect_fail("file 0 0\n", "zero size");
  expect_fail("file 0 100\nfile 0 200\n", "duplicate file");
  expect_fail("read 0 0 4096\n", "undeclared file");
  expect_fail("file 0 8192\nread 0 8000 4096\n", "beyond eof");
  expect_fail("file 0 8192\nwrite 0 0 0\n", "zero-size request");
  expect_fail("file 0 8192\nwrite 0 0\n", "missing size field");
}

TEST(TextIo, SparseFileIdsAreRemappedDense) {
  std::istringstream in(
      "file 10 8192\nfile 42 8192\nread 42 0 512\nwrite 10 0 512\n");
  const Trace t = load_text_trace(in);
  ASSERT_EQ(t.files.size(), 2u);
  EXPECT_EQ(t.files[0].id, 0u);
  EXPECT_EQ(t.files[1].id, 1u);
  EXPECT_EQ(t.records[0].file, 1u);  // 42 -> 1
  EXPECT_EQ(t.records[1].file, 0u);  // 10 -> 0
}

TEST(TextIo, AutoClientAssignsLanes) {
  std::istringstream in(
      "file 0 8192\nfile 1 8192\nread 0 0 512\nread 0 0 512\nread 1 0 512\n");
  const Trace t = load_text_trace(in);
  // Consecutive same-file records share a lane; the file switch rotates.
  EXPECT_EQ(t.records[0].client, t.records[1].client);
  EXPECT_NE(t.records[1].client, t.records[2].client);
}

TEST(TextIo, RoundTripsGeneratedTrace) {
  const Trace original =
      TraceGenerator(profile_by_name("home02").scaled(0.002), 3).generate();
  std::stringstream buffer;
  save_text_trace(original, buffer);
  const Trace loaded = load_text_trace(buffer, original.name);
  ASSERT_EQ(loaded.records.size(), original.records.size());
  ASSERT_EQ(loaded.files.size(), original.files.size());
  for (std::size_t i = 0; i < original.records.size(); ++i) {
    ASSERT_EQ(loaded.records[i].op, original.records[i].op) << i;
    ASSERT_EQ(loaded.records[i].file, original.records[i].file) << i;
    ASSERT_EQ(loaded.records[i].offset, original.records[i].offset) << i;
    ASSERT_EQ(loaded.records[i].size, original.records[i].size) << i;
    ASSERT_EQ(loaded.records[i].client, original.records[i].client) << i;
  }
}

TEST(TextIo, FileHelpers) {
  const std::string path = ::testing::TempDir() + "/edm_text_trace.txt";
  Trace t;
  t.name = "x";
  t.files.push_back({0, 8192});
  t.records.push_back({0, 0, 512, OpType::kWrite, 1});
  save_text_trace_file(t, path);
  const Trace loaded = load_text_trace_file(path);
  EXPECT_EQ(loaded.records.size(), 1u);
  EXPECT_THROW(load_text_trace_file("/nonexistent/x.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace edm::trace
