#include "util/ewma.h"

#include <gtest/gtest.h>

namespace edm::util {
namespace {

TEST(Ewma, FirstSampleSeedsDirectly) {
  Ewma e(0.1);
  EXPECT_FALSE(e.seeded());
  e.add(42.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_EQ(e.value(), 42.0);
}

TEST(Ewma, RecurrenceExact) {
  Ewma e(0.25);
  e.add(8.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25 * 0.0 + 0.75 * 8.0);
  e.add(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25 * 4.0 + 0.75 * 6.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(3.5);
  EXPECT_NEAR(e.value(), 3.5, 1e-9);
}

TEST(Ewma, SmallAlphaSmoothsSpikes) {
  Ewma smooth(0.01);
  Ewma twitchy(0.9);
  for (int i = 0; i < 100; ++i) {
    smooth.add(1.0);
    twitchy.add(1.0);
  }
  smooth.add(100.0);
  twitchy.add(100.0);
  EXPECT_LT(smooth.value(), 3.0);
  EXPECT_GT(twitchy.value(), 80.0);
}

TEST(Ewma, ResetClearsState) {
  Ewma e(0.5);
  e.add(10.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  EXPECT_EQ(e.value(), 0.0);
  EXPECT_EQ(e.count(), 0u);
  e.add(2.0);
  EXPECT_EQ(e.value(), 2.0);  // reseeds
}

TEST(Ewma, CountsSamples) {
  Ewma e(0.5);
  for (int i = 0; i < 7; ++i) e.add(1.0);
  EXPECT_EQ(e.count(), 7u);
}

}  // namespace
}  // namespace edm::util
