#include "util/flags.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace edm::util {
namespace {

// Builds argv from string literals; the parser never mutates them.
std::vector<char*> make_argv(std::initializer_list<const char*> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return argv;
}

TEST(FlagParser, ParsesEveryValueKind) {
  std::string s;
  double d = 0.0;
  std::uint32_t u32 = 0;
  std::uint16_t u16 = 0;
  std::int32_t i32 = 0;
  bool b = false;
  FlagParser parser;
  parser.add_string("--name", &s, "");
  parser.add_double("--ratio", &d, "");
  parser.add_uint32("--count", &u32, "");
  parser.add_uint16("--port", &u16, "");
  parser.add_int32("--delta", &i32, "");
  parser.add_bool("--verbose", &b, "");

  auto argv = make_argv({"--name=home02", "--ratio=0.25", "--count=42",
                         "--port=8080", "--delta=-3", "--verbose"});
  ASSERT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kOk);
  EXPECT_EQ(s, "home02");
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_EQ(u32, 42u);
  EXPECT_EQ(u16, 8080u);
  EXPECT_EQ(i32, -3);
  EXPECT_TRUE(b);
}

TEST(FlagParser, DefaultsSurviveWhenFlagsAbsent) {
  double d = 0.1;
  bool b = false;
  FlagParser parser;
  parser.add_double("--scale", &d, "");
  parser.add_bool("--csv", &b, "");
  auto argv = make_argv({});
  ASSERT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kOk);
  EXPECT_DOUBLE_EQ(d, 0.1);
  EXPECT_FALSE(b);
}

TEST(FlagParser, HelpRecognised) {
  FlagParser parser;
  auto argv = make_argv({"--help"});
  EXPECT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kHelp);
  auto argv2 = make_argv({"-h"});
  EXPECT_EQ(parser.parse(static_cast<int>(argv2.size()), argv2.data()),
            FlagParser::Result::kHelp);
}

TEST(FlagParser, UnknownOptionIsAnError) {
  double d = 0.0;
  FlagParser parser;
  parser.add_double("--scale", &d, "");
  auto argv = make_argv({"--nope=1"});
  EXPECT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kError);
  EXPECT_NE(parser.error().find("--nope"), std::string::npos);
}

TEST(FlagParser, BadNumericValueIsAnError) {
  double d = 0.0;
  std::uint32_t u = 0;
  FlagParser parser;
  parser.add_double("--scale", &d, "");
  parser.add_uint32("--osds", &u, "");
  for (const char* bad : {"--scale=abc", "--scale=1.5x", "--osds=12q",
                          "--scale=", "--osds="}) {
    auto argv = make_argv({bad});
    EXPECT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
              FlagParser::Result::kError)
        << bad;
  }
}

TEST(FlagParser, PrefixNamesDoNotCollide) {
  // --trace and --trace-file / --trace-out share a prefix; matching must be
  // on the full name before '='.
  std::string trace, trace_file, trace_out;
  FlagParser parser;
  parser.add_string("--trace", &trace, "");
  parser.add_string("--trace-file", &trace_file, "");
  parser.add_string("--trace-out", &trace_out, "");
  auto argv = make_argv(
      {"--trace=home02", "--trace-file=a.bin", "--trace-out=t.json"});
  ASSERT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kOk);
  EXPECT_EQ(trace, "home02");
  EXPECT_EQ(trace_file, "a.bin");
  EXPECT_EQ(trace_out, "t.json");
}

TEST(FlagParser, BoolFlagRejectsValueForm) {
  bool b = false;
  FlagParser parser;
  parser.add_bool("--csv", &b, "");
  auto argv = make_argv({"--csv=1"});
  EXPECT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kError);
  EXPECT_FALSE(b);
  // The error must name the flag and say it takes no value, not claim the
  // whole argument is an unknown option.
  EXPECT_NE(parser.error().find("--csv"), std::string::npos);
  EXPECT_NE(parser.error().find("takes no value"), std::string::npos);
}

TEST(FlagParser, ValueFlagWithoutValueIsAClearError) {
  double d = 0.5;
  FlagParser parser;
  parser.add_double("--scale", &d, "");
  auto argv = make_argv({"--scale"});
  EXPECT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kError);
  EXPECT_NE(parser.error().find("missing value for --scale"),
            std::string::npos);
  EXPECT_NE(parser.error().find("--scale=<value>"), std::string::npos);
  EXPECT_DOUBLE_EQ(d, 0.5);  // target untouched
}

TEST(FlagParser, UnknownOptionErrorPointsAtHelp) {
  double d = 0.0;
  FlagParser parser;
  parser.add_double("--scale", &d, "");
  auto argv = make_argv({"--scael=1"});
  EXPECT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kError);
  EXPECT_NE(parser.error().find("unknown option: --scael"),
            std::string::npos);
  EXPECT_NE(parser.error().find("--help"), std::string::npos);
}

TEST(FlagParser, PositionalArgumentIsRejectedDistinctly) {
  double d = 0.0;
  FlagParser parser;
  parser.add_double("--scale", &d, "");
  auto argv = make_argv({"home02"});
  EXPECT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kError);
  EXPECT_NE(parser.error().find("positional argument"), std::string::npos);
  EXPECT_NE(parser.error().find("home02"), std::string::npos);
}

TEST(FlagParser, BadValueErrorQuotesTheValue) {
  std::uint32_t u = 7;
  FlagParser parser;
  parser.add_uint32("--osds", &u, "");
  auto argv = make_argv({"--osds=12q"});
  EXPECT_EQ(parser.parse(static_cast<int>(argv.size()), argv.data()),
            FlagParser::Result::kError);
  EXPECT_NE(parser.error().find("bad value for --osds: '12q'"),
            std::string::npos);
}

TEST(FlagParser, UsageListsEveryFlag) {
  double d = 0.0;
  bool b = false;
  FlagParser parser;
  parser.add_double("--scale", &d, "trace scale");
  parser.add_bool("--csv", &b, "emit CSV");
  std::ostringstream os;
  parser.print_usage(os, "bench");
  const std::string usage = os.str();
  EXPECT_NE(usage.find("--scale=<v>"), std::string::npos);
  EXPECT_NE(usage.find("--csv"), std::string::npos);
  EXPECT_NE(usage.find("trace scale"), std::string::npos);
}

}  // namespace
}  // namespace edm::util
