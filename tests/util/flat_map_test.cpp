#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "util/rng.h"

namespace edm::util {
namespace {

TEST(FlatMap64, EmptyInitially) {
  FlatMap64<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_FALSE(m.contains(42));
  EXPECT_FALSE(m.erase(42));
}

TEST(FlatMap64, InsertFindErase) {
  FlatMap64<int> m;
  m[7] = 70;
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  m[7] = 71;  // overwrite, not a new entry
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.find(7), 71);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(9), 90);
}

TEST(FlatMap64, GrowsPastInitialCapacityAndClears) {
  FlatMap64<std::uint64_t> m;
  for (std::uint64_t k = 0; k < 10'000; ++k) m[k] = k * 3;
  EXPECT_EQ(m.size(), 10'000u);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
    ASSERT_EQ(*m.find(k), k * 3) << k;
  }
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
}

TEST(FlatMap64, ForEachVisitsEveryEntryOnce) {
  FlatMap64<std::uint64_t> m;
  for (std::uint64_t k = 100; k < 200; ++k) m[k] = k + 1;
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  m.for_each([&](std::uint64_t k, const std::uint64_t& v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 100u);
  for (std::uint64_t k = 100; k < 200; ++k) EXPECT_EQ(seen[k], k + 1);
}

TEST(FlatMap64, EraseIfRemovesExactlyMatches) {
  FlatMap64<int> m;
  for (std::uint64_t k = 0; k < 1000; ++k) m[k] = static_cast<int>(k % 5);
  const std::size_t removed =
      m.erase_if([](std::uint64_t, const int& v) { return v < 2; });
  EXPECT_EQ(removed, 400u);
  EXPECT_EQ(m.size(), 600u);
  m.for_each([](std::uint64_t, const int& v) { EXPECT_GE(v, 2); });
}

// Differential test against std::unordered_map: random insert / overwrite /
// erase / lookup mix.  Erase-heavy on purpose -- backward-shift deletion is
// the delicate part, and clustered keys (small dense ids, exactly what
// object ids look like) maximise probe-chain interaction.
TEST(FlatMap64, MatchesUnorderedMapOnRandomWorkload) {
  FlatMap64<std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Xoshiro256 rng(0xF1A7);
  for (int op = 0; op < 200'000; ++op) {
    const std::uint64_t key = rng.next_below(512);  // dense: forces collisions
    const double action = rng.next_double();
    if (action < 0.45) {
      const std::uint64_t value = rng.next_below(1u << 20);
      m[key] = value;
      ref[key] = value;
    } else if (action < 0.75) {
      ASSERT_EQ(m.erase(key), ref.erase(key) != 0) << "op " << op;
    } else {
      const auto it = ref.find(key);
      const std::uint64_t* p = m.find(key);
      if (it == ref.end()) {
        ASSERT_EQ(p, nullptr) << "op " << op << " key " << key;
      } else {
        ASSERT_NE(p, nullptr) << "op " << op << " key " << key;
        ASSERT_EQ(*p, it->second) << "op " << op << " key " << key;
      }
    }
    ASSERT_EQ(m.size(), ref.size()) << "op " << op;
  }
  // Full-content sweep at the end.
  std::size_t visited = 0;
  m.for_each([&](std::uint64_t k, const std::uint64_t& v) {
    ++visited;
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << k;
    ASSERT_EQ(v, it->second) << k;
  });
  EXPECT_EQ(visited, ref.size());
}

}  // namespace
}  // namespace edm::util
