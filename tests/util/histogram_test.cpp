#include "util/histogram.h"

#include <gtest/gtest.h>

namespace edm::util {
namespace {

TEST(LogHistogram, EmptyState) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, TracksMinMaxMeanExactly) {
  LogHistogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, QuantileWithinBucketResolution) {
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(100);  // all in bucket [64,128)
  const double q50 = h.quantile(0.5);
  EXPECT_GE(q50, 64.0);
  EXPECT_LE(q50, 128.0);
}

TEST(LogHistogram, QuantilesMonotone) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.add(v);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(1.0));
}

TEST(LogHistogram, ZeroValuesLandInFirstBucket) {
  LogHistogram h;
  h.add(0);
  h.add(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.quantile(0.5), 1.0);
}

TEST(LogHistogram, MergeCombinesCounts) {
  LogHistogram a;
  LogHistogram b;
  a.add(5);
  a.add(10);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(LogHistogram, MergeIntoEmpty) {
  LogHistogram a;
  LogHistogram b;
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.add(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LogHistogram, BriefMentionsCount) {
  LogHistogram h;
  h.add(1);
  EXPECT_NE(h.brief().find("n=1"), std::string::npos);
}

TEST(LinearHistogram, BinsAndClamping) {
  LinearHistogram h(0.0, 1.0, 10);
  h.add(0.05);   // bin 0
  h.add(0.95);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(7.0);    // clamped to bin 9
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[9], 2u);
}

TEST(LinearHistogram, BinBoundsConsistent) {
  LinearHistogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 20.0);
}

}  // namespace
}  // namespace edm::util
