#include "util/histogram.h"

#include <gtest/gtest.h>

namespace edm::util {
namespace {

TEST(LogHistogram, EmptyState) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, TracksMinMaxMeanExactly) {
  LogHistogram h;
  h.add(10);
  h.add(20);
  h.add(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LogHistogram, QuantileWithinBucketResolution) {
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(100);  // all in bucket [64,128)
  const double q50 = h.quantile(0.5);
  EXPECT_GE(q50, 64.0);
  EXPECT_LE(q50, 128.0);
}

TEST(LogHistogram, QuantilesMonotone) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.add(v);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(1.0));
}

TEST(LogHistogram, ZeroValuesLandInFirstBucket) {
  LogHistogram h;
  h.add(0);
  h.add(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.quantile(0.5), 1.0);
}

TEST(LogHistogram, EmptyQuantileZeroAtEveryQ) {
  LogHistogram h;
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 0.0) << q;
  }
}

TEST(LogHistogram, QuantileArgumentClamped) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(50);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(LogHistogram, SingleSampleQuantilesStayInItsBucket) {
  LogHistogram h;
  h.add(100);  // bucket [64, 128)
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), 64.0) << q;
    EXPECT_LE(h.quantile(q), 128.0) << q;
  }
}

TEST(LogHistogram, SingleZeroSample) {
  LogHistogram h;
  h.add(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_LE(h.quantile(0.99), 2.0);  // first bucket spans [0, 2)
}

TEST(LogHistogram, MergeMatchesCombinedBuild) {
  // Merging two halves must yield the same quantiles as one histogram
  // built from the union (buckets are additive).
  LogHistogram lo, hi, all;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    lo.add(v);
    all.add(v);
  }
  for (std::uint64_t v = 5000; v <= 9000; v += 10) {
    hi.add(v);
    all.add(v);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), all.count());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(lo.quantile(q), all.quantile(q)) << q;
  }
}

TEST(LogHistogram, MergeEmptyIntoPopulatedIsNoOp) {
  LogHistogram a;
  LogHistogram empty;
  a.add(10);
  a.add(1000);
  const double p50 = a.quantile(0.5);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), p50);
}

TEST(LogHistogram, MergeCombinesCounts) {
  LogHistogram a;
  LogHistogram b;
  a.add(5);
  a.add(10);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(LogHistogram, MergeIntoEmpty) {
  LogHistogram a;
  LogHistogram b;
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.add(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LogHistogram, BriefMentionsCount) {
  LogHistogram h;
  h.add(1);
  EXPECT_NE(h.brief().find("n=1"), std::string::npos);
}

TEST(LinearHistogram, BinsAndClamping) {
  LinearHistogram h(0.0, 1.0, 10);
  h.add(0.05);   // bin 0
  h.add(0.95);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(7.0);    // clamped to bin 9
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[9], 2u);
}

TEST(LinearHistogram, BinBoundsConsistent) {
  LinearHistogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 20.0);
}

}  // namespace
}  // namespace edm::util
