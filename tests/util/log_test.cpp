#include "util/log.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace edm::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet in benches unless something is wrong.
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, MacroCompilesAndFilters) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // With the level off, the stream expression must not be evaluated.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "x";
  };
  EDM_DEBUG << count();
  EDM_ERROR << count();
  EXPECT_EQ(evaluations, 0);

  set_log_level(LogLevel::kError);
  EDM_DEBUG << count();
  EXPECT_EQ(evaluations, 0);
  EDM_ERROR << count();  // evaluated (writes one line to stderr)
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, ConcurrentLoggingDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // filtered, but exercises the macro path
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        EDM_WARN << "thread message " << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace edm::util
