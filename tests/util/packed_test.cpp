#include "util/packed.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace edm::util {
namespace {

TEST(PackedIntVector, BitsForCoversSentinel) {
  // bits_for(n) must leave n itself representable so the all-ones value of
  // that width (>= n) can mark "unmapped" for indices in [0, n).
  EXPECT_EQ(PackedIntVector::bits_for(0), 1u);
  EXPECT_EQ(PackedIntVector::bits_for(1), 1u);
  EXPECT_EQ(PackedIntVector::bits_for(2), 2u);
  EXPECT_EQ(PackedIntVector::bits_for(255), 8u);
  EXPECT_EQ(PackedIntVector::bits_for(256), 9u);
  for (std::uint64_t n : {1ull, 7ull, 64ull, 65535ull, 1048576ull}) {
    const std::uint32_t bits = PackedIntVector::bits_for(n);
    EXPECT_GE(PackedIntVector::max_for(bits), n) << "n=" << n;
    EXPECT_EQ(PackedIntVector(1, bits, 0).max_value(),
              PackedIntVector::max_for(bits));
  }
}

TEST(PackedIntVector, FillAndRoundTrip) {
  const std::uint32_t bits = 17;  // deliberately straddles word boundaries
  PackedIntVector v(1000, bits, PackedIntVector::max_for(bits));
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v.get(i), v.max_value()) << i;
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    v.set(i, static_cast<std::uint64_t>(i * 131) & v.max_value());
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v.get(i), (static_cast<std::uint64_t>(i * 131) & v.max_value()))
        << i;
  }
}

TEST(PackedIntVector, MatchesReferenceVectorUnderRandomOps) {
  // Differential check against a plain vector across widths that exercise
  // exact word alignment (16, 32, 64) and straddling (3, 17, 33, 63).
  for (std::uint32_t bits : {3u, 16u, 17u, 32u, 33u, 63u, 64u}) {
    Xoshiro256 rng(0xC0FFEEu + bits);
    const std::size_t n = 513;
    PackedIntVector packed(n, bits, 0);
    std::vector<std::uint64_t> ref(n, 0);
    for (int op = 0; op < 20000; ++op) {
      const auto i = static_cast<std::size_t>(rng.next_below(n));
      const std::uint64_t val = rng() & packed.max_value();
      packed.set(i, val);
      ref[i] = val;
      const auto j = static_cast<std::size_t>(rng.next_below(n));
      ASSERT_EQ(packed.get(j), ref[j]) << "bits=" << bits << " op=" << op;
    }
  }
}

TEST(PackedIntVector, SetDoesNotDisturbNeighbours) {
  const std::uint32_t bits = 13;
  PackedIntVector v(64, bits, PackedIntVector::max_for(bits));
  v.set(10, 0);
  EXPECT_EQ(v.get(9), v.max_value());
  EXPECT_EQ(v.get(10), 0u);
  EXPECT_EQ(v.get(11), v.max_value());
}

TEST(PackedIntVector, BackingBytesShrinkVersusUint32) {
  // The use case from the flash layer: 17-bit entries for a 65536-page
  // device must come out roughly 2x smaller than a uint32_t table.
  const std::size_t pages = 65536;
  const std::uint32_t bits = PackedIntVector::bits_for(pages);
  PackedIntVector v(pages, bits, 0);
  EXPECT_LE(v.backing_bytes(), pages * sizeof(std::uint32_t) * 6 / 10);
}

TEST(BitVector, SetTestClear) {
  BitVector b(200);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_FALSE(b.test(i));
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(199));
  EXPECT_FALSE(b.test(1));
  EXPECT_FALSE(b.test(65));
  b.clear(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_TRUE(b.test(64));
}

TEST(BitVector, CountRange) {
  BitVector b(256);
  for (std::size_t i = 0; i < b.size(); i += 3) b.set(i);
  EXPECT_EQ(b.count_range(0, 256), 86u);
  EXPECT_EQ(b.count_range(0, 0), 0u);
  EXPECT_EQ(b.count_range(0, 1), 1u);
  EXPECT_EQ(b.count_range(1, 2), 0u);  // bits 1 and 2 are clear
  EXPECT_EQ(b.count_range(60, 10), b.count_range(60, 5) + b.count_range(65, 5));
}

TEST(BitVector, BackingBytesAreOneBitPerEntry) {
  BitVector b(65536);
  EXPECT_EQ(b.backing_bytes(), 65536u / 8);
}

}  // namespace
}  // namespace edm::util
