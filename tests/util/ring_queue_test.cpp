#include "util/ring_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>

#include "util/rng.h"

namespace edm::util {
namespace {

TEST(RingQueue, EmptyInitially) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(RingQueue, FifoOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, ClearKeepsWorking) {
  RingQueue<int> q;
  q.push_back(1);
  q.push_back(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back(7);
  EXPECT_EQ(q.front(), 7);
}

// Differential test against std::deque: the wrap-around and growth-while-
// wrapped cases are the delicate parts, so the workload keeps the queue
// short and breathing (push bursts, drain bursts) to force many wraps.
TEST(RingQueue, MatchesDequeOnRandomWorkload) {
  RingQueue<std::uint64_t> q;
  std::deque<std::uint64_t> ref;
  Xoshiro256 rng(0xB0BB1E);
  std::uint64_t next = 0;
  for (int op = 0; op < 200'000; ++op) {
    if (ref.empty() || rng.next_double() < 0.52) {
      const std::uint64_t burst = 1 + rng.next_below(6);
      for (std::uint64_t i = 0; i < burst; ++i) {
        q.push_back(next);
        ref.push_back(next);
        ++next;
      }
    } else {
      ASSERT_EQ(q.front(), ref.front()) << "op " << op;
      q.pop_front();
      ref.pop_front();
    }
    ASSERT_EQ(q.size(), ref.size()) << "op " << op;
  }
  while (!ref.empty()) {
    ASSERT_EQ(q.front(), ref.front());
    q.pop_front();
    ref.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace edm::util
