#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace edm::util {
namespace {

TEST(Xoshiro256, DeterministicGivenSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, ZeroSeedIsValid) {
  // splitmix64 seeding guarantees a non-zero internal state even for 0.
  Xoshiro256 rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(13);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowZeroBoundReturnsZero) {
  Xoshiro256 rng(17);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, NextInInclusiveBounds) {
  Xoshiro256 rng(23);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_in(10, 13);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, GaussianMomentsApproximatelyStandard) {
  Xoshiro256 rng(29);
  const int n = 200000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Xoshiro256, SplitStreamsDecorrelated) {
  Xoshiro256 parent(31);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ull);
  Xoshiro256 rng(1);
  (void)rng();
  SUCCEED();
}

}  // namespace
}  // namespace edm::util
