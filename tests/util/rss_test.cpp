#include "util/rss.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

namespace edm::util {
namespace {

TEST(Rss, ProbesReportPlausibleValues) {
#if defined(__linux__)
  const std::size_t current = current_rss_bytes();
  const std::size_t peak = peak_rss_bytes();
  ASSERT_GT(current, 0u);
  ASSERT_GT(peak, 0u);
  // VmHWM is the high-water mark of VmRSS, so it can never be below it.
  EXPECT_GE(peak, current);
#else
  EXPECT_EQ(current_rss_bytes(), 0u);
  EXPECT_EQ(peak_rss_bytes(), 0u);
#endif
}

#if defined(__linux__)
TEST(Rss, PeakTracksLargeAllocation) {
  // Size the buffer so current + buffer clears the existing high-water mark
  // by a wide margin (an earlier test may have already pushed VmHWM above
  // today's VmRSS).
  const std::size_t current = current_rss_bytes();
  const std::size_t before = peak_rss_bytes();
  ASSERT_GE(before, current);
  const std::size_t grow = (before - current) + (64u << 20);
  {
    // The fill touches every page so they are resident, not just mapped.
    std::vector<char> block(grow, 1);
    const auto sum = std::accumulate(block.begin(), block.end(), 0ull);
    ASSERT_GT(sum, 0u);  // keep the buffer observable
  }
  // The buffer is freed, but the high-water mark must remember it.
  EXPECT_GE(peak_rss_bytes(), before + (32u << 20));
}
#endif

}  // namespace
}  // namespace edm::util
