#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace edm::util {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.rsd(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(StreamingStats, MatchesNaiveComputation) {
  Xoshiro256 rng(3);
  std::vector<double> values;
  StreamingStats s;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double() * 100 - 50;
    values.push_back(v);
    s.add(v);
  }
  double mean = 0;
  for (double v : values) mean += v;
  mean /= values.size();
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= values.size();
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(StreamingStats, MergeEquivalentToSequential) {
  Xoshiro256 rng(5);
  StreamingStats whole;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_gaussian();
    whole.add(v);
    (i % 3 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a;
  a.add(1.0);
  a.add(2.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(StreamingStats, RsdIsStddevOverMean) {
  StreamingStats s;
  for (double v : {10.0, 20.0, 30.0}) s.add(v);
  // Population stddev of {10,20,30} = sqrt(200/3).
  EXPECT_NEAR(s.rsd(), std::sqrt(200.0 / 3.0) / 20.0, 1e-12);
}

TEST(StreamingStats, RsdZeroMeanGuard) {
  StreamingStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(s.rsd(), 0.0);
}

TEST(Summarize, MatchesStreaming) {
  const std::vector<double> v = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  const Summary sum = summarize(v);
  EXPECT_NEAR(sum.mean, 23.0 / 6.0, 1e-12);
  EXPECT_EQ(sum.min, 1.0);
  EXPECT_EQ(sum.max, 9.0);
  EXPECT_NEAR(sum.sum, 23.0, 1e-12);
  EXPECT_GT(sum.rsd, 0.0);
}

TEST(Percentile, EmptyAndEdges) {
  EXPECT_EQ(percentile({}, 50), 0.0);
  EXPECT_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_EQ(percentile({7.0}, 100), 7.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v = {0.0, 10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(percentile(v, 0), 0.0, 1e-12);
  EXPECT_NEAR(percentile(v, 50), 20.0, 1e-12);
  EXPECT_NEAR(percentile(v, 100), 40.0, 1e-12);
  EXPECT_NEAR(percentile(v, 25), 10.0, 1e-12);
  EXPECT_NEAR(percentile(v, 12.5), 5.0, 1e-12);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_NEAR(percentile({5.0, 1.0, 3.0}, 50), 3.0, 1e-12);
}

}  // namespace
}  // namespace edm::util
