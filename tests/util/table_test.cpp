#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace edm::util {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(std::uint64_t{12345}), "12345");
}

TEST(Table, PctShowsSign) {
  EXPECT_EQ(Table::pct(0.25), "+25.0%");
  EXPECT_EQ(Table::pct(-0.051), "-5.1%");
}

TEST(Table, CsvBasic) {
  Table t({"x", "y"});
  t.add_row({"1", "hello"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,hello\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"c"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, ColumnsAlignedToWidestCell) {
  Table t({"h"});
  t.add_row({"wide-cell-content"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  // Each printed row is padded to the widest cell + 2.
  std::istringstream lines(os.str());
  std::string header;
  std::getline(lines, header);
  std::string divider;
  std::getline(lines, divider);
  EXPECT_GE(divider.size(), std::string("wide-cell-content").size());
}

}  // namespace
}  // namespace edm::util
