#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace edm::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.submit([&] { ++counter; });
  f.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  pool.parallel_for(200, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionPropagatesThroughParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelForRunsEveryTaskDespiteException) {
  // Regression: parallel_for must drain every future before rethrowing.
  // Bailing on the first exception would destroy the callable while queued
  // tasks still reference it, and would leave work silently unrun.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 10) throw std::runtime_error("x");
                                   ++ran;
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 99);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexException) {
  // Two tasks throw; the slower, lower-index one must win so the surfaced
  // error does not depend on scheduling.
  ThreadPool pool(4);
  try {
    pool.parallel_for(10, [](std::size_t i) {
      if (i == 3) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        throw std::runtime_error("3");
      }
      if (i == 7) throw std::runtime_error("7");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
}

TEST(ThreadPool, ActuallyRunsConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  pool.parallel_for(8, [&](std::size_t) {
    const int now = ++inside;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --inside;
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace edm::util
