#include "util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace edm::util {
namespace {

std::vector<double> empirical_pmf(const ZipfSampler& z, int samples,
                                  std::uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  std::vector<double> counts(z.population(), 0.0);
  for (int i = 0; i < samples; ++i) counts[z(rng)] += 1.0;
  for (auto& c : counts) c /= samples;
  return counts;
}

TEST(ZipfSampler, AlwaysInRange) {
  const ZipfSampler z(100, 1.2);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_LT(z(rng), 100u);
  }
}

TEST(ZipfSampler, SingleElementPopulation) {
  const ZipfSampler z(1, 1.0);
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 0u);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  const ZipfSampler z(10, 0.0);
  const auto pmf = empirical_pmf(z, 200000);
  for (double p : pmf) EXPECT_NEAR(p, 0.1, 0.01);
}

TEST(ZipfSampler, PmfMatchesAnalyticZipf) {
  const double s = 1.1;
  const std::uint64_t n = 50;
  const ZipfSampler z(n, s);
  const auto pmf = empirical_pmf(z, 500000);
  double h = 0;
  for (std::uint64_t k = 1; k <= n; ++k) h += std::pow(k, -s);
  for (std::uint64_t k = 1; k <= n; ++k) {
    const double expected = std::pow(k, -s) / h;
    EXPECT_NEAR(pmf[k - 1], expected, 0.1 * expected + 0.002)
        << "rank " << k;
  }
}

TEST(ZipfSampler, HigherExponentMoreConcentrated) {
  const auto mild = empirical_pmf(ZipfSampler(1000, 0.8), 200000, 7);
  const auto steep = empirical_pmf(ZipfSampler(1000, 1.4), 200000, 7);
  EXPECT_GT(steep[0], mild[0]);
  // Top-10 mass ordering.
  double mild10 = 0;
  double steep10 = 0;
  for (int i = 0; i < 10; ++i) {
    mild10 += mild[i];
    steep10 += steep[i];
  }
  EXPECT_GT(steep10, mild10 + 0.1);
}

TEST(ZipfSampler, RanksAreMonotonicallyLessProbable) {
  const auto pmf = empirical_pmf(ZipfSampler(20, 1.0), 400000, 11);
  // Allow small noise, but rank 1 >= rank 5 >= rank 20 strictly.
  EXPECT_GT(pmf[0], pmf[4]);
  EXPECT_GT(pmf[4], pmf[19]);
}

TEST(ZipfSampler, LargePopulationStillBounded) {
  const ZipfSampler z(10'000'000, 1.05);
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(z(rng), 10'000'000u);
  }
}

class ZipfExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, EmpiricalPmfNormalisedAndInRange) {
  const ZipfSampler z(64, GetParam());
  const auto pmf = empirical_pmf(z, 100000, 17);
  double total = 0;
  for (double p : pmf) {
    total += p;
    ASSERT_GE(p, 0.0);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0, 1.3, 1.8,
                                           2.5));

}  // namespace
}  // namespace edm::util
