#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace edm::workload {
namespace {

std::vector<SimTime> take(ArrivalProcess& p, std::size_t n) {
  std::vector<SimTime> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(p.next());
  return out;
}

TEST(ArrivalKind, ParsesAndRejects) {
  EXPECT_EQ(arrival_kind_from("closed"), ArrivalKind::kClosed);
  EXPECT_EQ(arrival_kind_from("poisson"), ArrivalKind::kPoisson);
  EXPECT_EQ(arrival_kind_from("fixed"), ArrivalKind::kFixed);
  EXPECT_THROW(arrival_kind_from("bursty"), std::invalid_argument);
  EXPECT_STREQ(arrival_kind_name(ArrivalKind::kPoisson), "poisson");
}

TEST(ArrivalProcess, FixedRateSpacingIsExact) {
  ArrivalProcess p(ArrivalKind::kFixed, 1000.0, 42);
  EXPECT_EQ(p.next(), 1000u);
  EXPECT_EQ(p.next(), 2000u);
  EXPECT_EQ(p.next(), 3000u);
}

TEST(ArrivalProcess, PoissonLongRunRateConverges) {
  const double rate = 5000.0;
  ArrivalProcess p(ArrivalKind::kPoisson, rate, 7);
  const std::size_t n = 50000;
  SimTime last = 0;
  for (std::size_t i = 0; i < n; ++i) last = p.next();
  const double measured = static_cast<double>(n) * 1e6 /
                          static_cast<double>(last);
  EXPECT_NEAR(measured, rate, 0.05 * rate);
}

TEST(ArrivalProcess, ArrivalsAreNonDecreasing) {
  BurstConfig burst;
  burst.period_s = 0.5;
  burst.duty = 0.2;
  DiurnalConfig diurnal;
  diurnal.period_s = 10.0;
  diurnal.amplitude = 0.8;
  ArrivalProcess p(ArrivalKind::kPoisson, 2000.0, 3, burst, diurnal);
  SimTime prev = 0;
  for (int i = 0; i < 20000; ++i) {
    const SimTime at = p.next();
    EXPECT_GE(at, prev);
    prev = at;
  }
}

TEST(ArrivalProcess, SameSeedSameSequence) {
  ArrivalProcess a(ArrivalKind::kPoisson, 1234.0, 99);
  ArrivalProcess b(ArrivalKind::kPoisson, 1234.0, 99);
  EXPECT_EQ(take(a, 1000), take(b, 1000));
}

TEST(ArrivalProcess, DifferentSeedDifferentSequence) {
  ArrivalProcess a(ArrivalKind::kPoisson, 1234.0, 1);
  ArrivalProcess b(ArrivalKind::kPoisson, 1234.0, 2);
  EXPECT_NE(take(a, 100), take(b, 100));
}

TEST(ArrivalProcess, BurstConfinesArrivalsToOnWindows) {
  BurstConfig burst;
  burst.period_s = 1.0;
  burst.duty = 0.25;
  ArrivalProcess p(ArrivalKind::kFixed, 1000.0, 0, burst);
  for (int i = 0; i < 5000; ++i) {
    const double t_s = static_cast<double>(p.next()) / 1e6;
    const double phase = std::fmod(t_s, burst.period_s);
    // The last arrival of an ON window can land exactly on the boundary.
    EXPECT_LE(phase, burst.duty * burst.period_s + 1e-9)
        << "arrival outside the ON window at t=" << t_s << " s";
  }
}

TEST(ArrivalProcess, BurstPreservesLongRunMeanRate) {
  // Count arrivals over whole periods (ending mid-ON-window would bias
  // the estimate up by the truncated OFF tail).
  const double rate = 1000.0;
  BurstConfig burst;
  burst.period_s = 1.0;
  burst.duty = 0.25;
  ArrivalProcess p(ArrivalKind::kFixed, rate, 0, burst);
  const double horizon_us = 10 * burst.period_s * 1e6;
  std::size_t count = 0;
  while (static_cast<double>(p.next()) < horizon_us) ++count;
  EXPECT_NEAR(static_cast<double>(count), 10.0 * rate, 2.0);
}

TEST(ArrivalProcess, DiurnalSkewsArrivalsTowardThePeak) {
  // sin is positive over the first half-period, so a fixed-rate process
  // under diurnal modulation packs more arrivals into [0, P/2).
  DiurnalConfig diurnal;
  diurnal.period_s = 10.0;
  diurnal.amplitude = 0.9;
  ArrivalProcess p(ArrivalKind::kFixed, 1000.0, 0, {}, diurnal);
  std::size_t first_half = 0;
  std::size_t second_half = 0;
  while (true) {
    const double t_s = static_cast<double>(p.next()) / 1e6;
    if (t_s >= diurnal.period_s) break;
    (t_s < diurnal.period_s / 2.0 ? first_half : second_half)++;
  }
  EXPECT_GT(first_half, 2 * second_half);
  EXPECT_GT(second_half, 0u);
}

TEST(ArrivalProcess, RateAtReflectsModulators) {
  BurstConfig burst;
  burst.period_s = 1.0;
  burst.duty = 0.5;
  ArrivalProcess bursty(ArrivalKind::kFixed, 100.0, 0, burst);
  EXPECT_DOUBLE_EQ(bursty.rate_at(0.0), 200.0);       // ON: rate / duty
  EXPECT_DOUBLE_EQ(bursty.rate_at(750'000.0), 0.0);   // OFF window

  DiurnalConfig diurnal;
  diurnal.period_s = 4.0;
  diurnal.amplitude = 0.5;
  ArrivalProcess wavy(ArrivalKind::kFixed, 100.0, 0, {}, diurnal);
  EXPECT_NEAR(wavy.rate_at(1e6), 150.0, 1e-6);   // peak (t = P/4)
  EXPECT_NEAR(wavy.rate_at(3e6), 50.0, 1e-6);    // trough (t = 3P/4)
}

TEST(ArrivalProcess, ValidatesConfiguration) {
  EXPECT_THROW(ArrivalProcess(ArrivalKind::kClosed, 100.0, 0),
               std::invalid_argument);
  EXPECT_THROW(ArrivalProcess(ArrivalKind::kPoisson, 0.0, 0),
               std::invalid_argument);
  EXPECT_THROW(ArrivalProcess(ArrivalKind::kPoisson, -5.0, 0),
               std::invalid_argument);

  BurstConfig bad_duty;
  bad_duty.period_s = 1.0;
  bad_duty.duty = 0.0;
  EXPECT_THROW(ArrivalProcess(ArrivalKind::kFixed, 1.0, 0, bad_duty),
               std::invalid_argument);
  bad_duty.duty = 1.5;
  EXPECT_THROW(ArrivalProcess(ArrivalKind::kFixed, 1.0, 0, bad_duty),
               std::invalid_argument);

  DiurnalConfig bad_amp;
  bad_amp.period_s = 1.0;
  bad_amp.amplitude = 1.0;
  EXPECT_THROW(ArrivalProcess(ArrivalKind::kFixed, 1.0, 0, {}, bad_amp),
               std::invalid_argument);
}

// A burst ON window narrower than the default 10 ms grid cell must still
// terminate (the grid adapts to a quarter of the ON window).
TEST(ArrivalProcess, NarrowBurstWindowTerminates) {
  BurstConfig burst;
  burst.period_s = 0.02;  // ON window = 2 ms < 10 ms default cell
  burst.duty = 0.1;
  ArrivalProcess p(ArrivalKind::kPoisson, 500.0, 11, burst);
  SimTime prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const SimTime at = p.next();
    EXPECT_GE(at, prev);
    prev = at;
  }
  EXPECT_GT(prev, 0u);
}

}  // namespace
}  // namespace edm::workload
