#include "workload/tenant.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace edm::workload {
namespace {

TenantSpec small_tenant(const std::string& profile, double rate) {
  TenantSpec spec;
  spec.profile = profile;
  spec.scale = 0.01;
  spec.rate_ops_per_sec = rate;
  return spec;
}

OpenLoopConfig two_tenant_config() {
  OpenLoopConfig cfg;
  cfg.tenants = {small_tenant("home02", 2000.0),
                 small_tenant("lair62", 1000.0)};
  return cfg;
}

std::vector<Arrival> drain(OpenLoopSource& source) {
  std::vector<Arrival> out;
  Arrival a;
  while (source.next(a)) out.push_back(a);
  return out;
}

TEST(ParseTenantSpec, FullAndPartialForms) {
  TenantSpec defaults = small_tenant("home02", 500.0);
  defaults.slo_ms = 80.0;

  const TenantSpec full = parse_tenant_spec("lair62:800:50:0.2", defaults);
  EXPECT_EQ(full.profile, "lair62");
  EXPECT_DOUBLE_EQ(full.rate_ops_per_sec, 800.0);
  EXPECT_DOUBLE_EQ(full.slo_ms, 50.0);
  EXPECT_DOUBLE_EQ(full.scale, 0.2);

  const TenantSpec partial = parse_tenant_spec("deasna:300", defaults);
  EXPECT_EQ(partial.profile, "deasna");
  EXPECT_DOUBLE_EQ(partial.rate_ops_per_sec, 300.0);
  EXPECT_DOUBLE_EQ(partial.slo_ms, 80.0);   // inherited
  EXPECT_DOUBLE_EQ(partial.scale, 0.01);    // inherited

  const TenantSpec skipped = parse_tenant_spec("home03::25", defaults);
  EXPECT_DOUBLE_EQ(skipped.rate_ops_per_sec, 500.0);  // empty = inherit
  EXPECT_DOUBLE_EQ(skipped.slo_ms, 25.0);
}

TEST(ParseTenantSpec, Rejections) {
  const TenantSpec defaults = small_tenant("home02", 500.0);
  EXPECT_THROW(parse_tenant_spec("", defaults), std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("a:1:2:3:4", defaults),
               std::invalid_argument);
  EXPECT_THROW(parse_tenant_spec("home02:abc", defaults),
               std::invalid_argument);
}

TEST(OpenLoopConfigValidate, CatchesBadTenants) {
  OpenLoopConfig cfg = two_tenant_config();
  EXPECT_NO_THROW(cfg.validate());
  cfg.tenants[1].rate_ops_per_sec = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = two_tenant_config();
  cfg.tenants[0].profile = "no-such-trace";
  // profile_by_name reports unknown names as std::out_of_range.
  EXPECT_THROW(cfg.validate(), std::out_of_range);
  cfg = two_tenant_config();
  cfg.tenants[0].arrival = ArrivalKind::kClosed;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(OpenLoopSource, MergedArrivalsAreTimeOrdered) {
  OpenLoopSource source(two_tenant_config(), 4);
  const auto arrivals = drain(source);
  ASSERT_GT(arrivals.size(), 1000u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].at, arrivals[i - 1].at);
  }
}

TEST(OpenLoopSource, TenantsGetDisjointFileRanges) {
  OpenLoopSource source(two_tenant_config(), 4);
  // The combined population has every id exactly once (rebased ranges
  // cannot collide).
  std::set<FileId> ids;
  for (const auto& f : source.files()) ids.insert(f.id);
  EXPECT_EQ(ids.size(), source.files().size());

  // Per-tenant records only touch that tenant's id range.
  const auto arrivals = drain(source);
  std::vector<FileId> min_id(2, ~FileId{0});
  std::vector<FileId> max_id(2, 0);
  for (const auto& a : arrivals) {
    ASSERT_LT(a.tenant, 2);
    min_id[a.tenant] = std::min(min_id[a.tenant], a.record.file);
    max_id[a.tenant] = std::max(max_id[a.tenant], a.record.file);
  }
  EXPECT_LT(max_id[0], min_id[1]);
}

TEST(OpenLoopSource, DeterministicAcrossInstances) {
  OpenLoopSource a(two_tenant_config(), 4);
  OpenLoopSource b(two_tenant_config(), 4);
  Arrival ra;
  Arrival rb;
  for (int i = 0; i < 5000; ++i) {
    const bool more_a = a.next(ra);
    const bool more_b = b.next(rb);
    ASSERT_EQ(more_a, more_b);
    if (!more_a) break;
    EXPECT_EQ(ra.at, rb.at);
    EXPECT_EQ(ra.tenant, rb.tenant);
    EXPECT_EQ(ra.record.file, rb.record.file);
    EXPECT_EQ(ra.record.offset, rb.record.offset);
  }
}

TEST(OpenLoopSource, ArrivalSeedDecorrelatesDraws) {
  OpenLoopConfig salted = two_tenant_config();
  salted.arrival_seed = 1234567;
  OpenLoopSource a(two_tenant_config(), 4);
  OpenLoopSource b(salted, 4);
  Arrival ra;
  Arrival rb;
  bool diverged = false;
  for (int i = 0; i < 200 && a.next(ra) && b.next(rb); ++i) {
    if (ra.at != rb.at) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(OpenLoopSource, TotalRecordsMatchesDrainAndKeepsPosition) {
  OpenLoopSource source(two_tenant_config(), 4);
  Arrival first;
  ASSERT_TRUE(source.next(first));
  const std::uint64_t total = source.total_records();
  // The pre-pass counts independent streams; one arrival was already
  // consumed from this source's own position.
  const auto rest = drain(source);
  EXPECT_EQ(total, rest.size() + 1);
}

TEST(OpenLoopSource, DuplicateProfilesGetIndexedNames) {
  OpenLoopConfig cfg;
  cfg.tenants = {small_tenant("home02", 500.0),
                 small_tenant("home02", 700.0),
                 small_tenant("lair62", 300.0)};
  cfg.tenants[1].seed_offset = 1;
  OpenLoopSource source(cfg, 2);
  EXPECT_EQ(source.tenant_name(0), "home02#0");
  EXPECT_EQ(source.tenant_name(1), "home02#1");
  EXPECT_EQ(source.tenant_name(2), "lair62");
  EXPECT_EQ(source.name(), "home02+home02+lair62");
  EXPECT_DOUBLE_EQ(source.offered_ops_per_sec(), 1500.0);
}

TEST(OpenLoopSource, DriftRotatesFilesWithinTenantRange) {
  OpenLoopConfig cfg;
  cfg.tenants = {small_tenant("home02", 5000.0)};
  OpenLoopSource plain(cfg, 4);
  cfg.tenants[0].drift.period_s = 0.05;  // several rotations per run
  OpenLoopSource drifted(cfg, 4);

  const auto a = drain(plain);
  const auto b = drain(drifted);
  ASSERT_EQ(a.size(), b.size());

  const std::uint64_t file_count = plain.files().size();
  bool any_rotated = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Same record sequence and arrival stamps; only the id mapping moves.
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_LT(b[i].record.file, file_count);
    if (a[i].record.file != b[i].record.file) any_rotated = true;
  }
  EXPECT_TRUE(any_rotated);
}

TEST(OpenLoopSource, RequiresTenants) {
  OpenLoopConfig empty;
  EXPECT_THROW(OpenLoopSource(empty, 4), std::invalid_argument);
}

}  // namespace
}  // namespace edm::workload
