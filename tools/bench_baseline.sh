#!/usr/bin/env bash
# Builds the default preset and runs bench/perf_baseline on the standard
# grid, writing the machine-readable result to BENCH_baseline.json at the
# repo root (the file performance PRs refresh and commit; see
# docs/PERFORMANCE.md for the methodology and comparison rules).
#
#   tools/bench_baseline.sh [perf_baseline flags...]
#
# Flags are passed straight through, so e.g.
#   tools/bench_baseline.sh --quick            # smoke run (don't commit)
#   tools/bench_baseline.sh --scale=1 --repeat=7
#   tools/bench_baseline.sh --out=/tmp/b.json  # redirect the JSON
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs" --target perf_baseline >/dev/null

# Default output lands at the repo root unless the caller overrode --out.
out_args=()
case " $* " in
  *" --out="*) ;;
  *) out_args=(--out=BENCH_baseline.json) ;;
esac

# Provenance: the binary embeds compiler/flags/CPU itself; the commit has
# to come from us (the binary never shells out to git).
EDM_GIT_COMMIT=$(git rev-parse HEAD 2>/dev/null || echo "")
export EDM_GIT_COMMIT

# Give the machine a moment to go quiet after the build: timing right
# after compilation is one of the noise sources the methodology bans.
sleep 3
exec ./build/bench/perf_baseline --scale=0.5 --repeat=5 "${out_args[@]}" "$@"
