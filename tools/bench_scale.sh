#!/usr/bin/env bash
# Builds the default preset and runs bench/perf_scale on the standard
# scale sweep, writing the machine-readable result to BENCH_scale.json at
# the repo root (the file memory-scaling PRs refresh and commit; see
# docs/PERFORMANCE.md "Memory" for methodology and comparison rules).
#
#   tools/bench_scale.sh [perf_scale flags...]
#
# Flags are passed straight through, so e.g.
#   tools/bench_scale.sh --quick                 # smoke run (don't commit)
#   tools/bench_scale.sh --scales=1,2,4,8
#   tools/bench_scale.sh --out=/tmp/s.json       # redirect the JSON
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs" --target perf_scale >/dev/null

# Default output lands at the repo root unless the caller overrode --out.
out_args=()
case " $* " in
  *" --out="*) ;;
  *) out_args=(--out=BENCH_scale.json) ;;
esac

# Provenance: the binary embeds compiler/flags/CPU itself; the commit has
# to come from us (the binary never shells out to git).
EDM_GIT_COMMIT=$(git rev-parse HEAD 2>/dev/null || echo "")
export EDM_GIT_COMMIT

# Give the machine a moment to go quiet after the build: timing right
# after compilation is one of the noise sources the methodology bans.
sleep 3
exec ./build/bench/perf_scale "${out_args[@]}" "$@"
