#!/usr/bin/env bash
# Builds the default preset and runs bench/perf_shards (sharded-replay
# throughput at --shards 1/2/4), writing the machine-readable result to
# BENCH_shards.json at the repo root (the committed reference; see
# docs/PERFORMANCE.md "Parallel replay" for the methodology — in
# particular, only run this for the record on a host with at least as
# many hardware threads as the largest shard count).
#
#   tools/bench_shards.sh [perf_shards flags...]
#
# Flags are passed straight through, so e.g.
#   tools/bench_shards.sh --quick            # smoke run (don't commit)
#   tools/bench_shards.sh --scale=8 --repeat=5
#   tools/bench_shards.sh --out=/tmp/s.json  # redirect the JSON
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs" --target perf_shards >/dev/null

# Default output lands at the repo root unless the caller overrode --out.
out_args=()
case " $* " in
  *" --out="*) ;;
  *) out_args=(--out=BENCH_shards.json) ;;
esac

# Provenance: the binary embeds compiler/flags/CPU itself; the commit has
# to come from us (the binary never shells out to git).
EDM_GIT_COMMIT=$(git rev-parse HEAD 2>/dev/null || echo "")
export EDM_GIT_COMMIT

# Give the machine a moment to go quiet after the build: timing right
# after compilation is one of the noise sources the methodology bans.
sleep 3
exec ./build/bench/perf_shards "${out_args[@]}" "$@"
