#!/usr/bin/env bash
# Builds the default preset and runs bench/perf_shards (sharded-replay
# throughput at --shards 1/2/4), writing the machine-readable result to
# BENCH_shards.json at the repo root (the committed reference; see
# docs/PERFORMANCE.md "Parallel replay" for the methodology — in
# particular, only run this for the record on a host with at least as
# many hardware threads as the largest shard count).
#
#   tools/bench_shards.sh [perf_shards flags...]
#
# Flags are passed straight through, so e.g.
#   tools/bench_shards.sh --quick            # smoke run (don't commit)
#   tools/bench_shards.sh --scale=8 --repeat=5
#   tools/bench_shards.sh --out=/tmp/s.json  # redirect the JSON
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs" --target perf_shards >/dev/null

# Default output lands at the repo root unless the caller overrode --out.
out_args=()
case " $* " in
  *" --out="*) ;;
  *) out_args=(--out=BENCH_shards.json) ;;
esac

# Provenance: the binary embeds compiler/flags/CPU itself; the commit has
# to come from us (the binary never shells out to git).
EDM_GIT_COMMIT=$(git rev-parse HEAD 2>/dev/null || echo "")
export EDM_GIT_COMMIT

# A single-hardware-thread host can only measure the overhead floor --
# every sharded cell serialises onto the one core, so speedup_vs_serial
# is structurally <= 1.0 and MUST NOT be mistaken for (or committed as)
# a speedup reference.  Warn loudly; the JSON itself stamps
# hardware_threads so a reader can re-check.
hw_threads=$(nproc 2>/dev/null || echo 1)
if [ "$hw_threads" -le 1 ]; then
  cat >&2 <<'EOF'
============================================================================
WARNING: this host reports 1 hardware thread.  perf_shards results from
this run measure the sharded replay's pure barrier/handoff OVERHEAD, not
its speedup -- every shard worker time-slices one core.  Do NOT treat the
resulting BENCH_shards.json as a speedup reference; re-run on a host with
hardware_threads >= the largest shard count (see docs/PERFORMANCE.md
"Parallel replay").  The JSON stamps "hardware_threads": 1 so downstream
readers can tell the two kinds of run apart.
============================================================================
EOF
fi

# Give the machine a moment to go quiet after the build: timing right
# after compilation is one of the noise sources the methodology bans.
sleep 3
exec ./build/bench/perf_shards "${out_args[@]}" "$@"
