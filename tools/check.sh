#!/usr/bin/env bash
# Full pre-merge check: documentation consistency (tools/check_docs.sh),
# then build + test the normal config (plus a perf_baseline smoke run that
# validates the edm-bench-result/1 JSON shape), then the asan-ubsan
# config, then the concurrency-sensitive tests (telemetry, thread pool,
# sweep runner, logging) under ThreadSanitizer (CMakePresets.json).  Any
# failure aborts.
#
#   tools/check.sh [--fast]   # --fast skips the sanitizer configs
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

# Smoke the throughput baseline: a --quick run must succeed and emit
# schema-valid JSON (docs/PERFORMANCE.md).  Catches bit-rot in the bench
# binary and its output contract without paying for a full grid.
bench_smoke() {
  echo "== bench smoke (perf_baseline --quick) =="
  local out
  out=$(mktemp)
  ./build/bench/perf_baseline --quick --out="$out" >/dev/null
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "edm-bench-result/1", d.get("schema")
assert d["cells"], "no cells"
cell_keys = {"trace", "policy", "num_osds", "events_processed",
             "completed_ops", "replay_wall_s", "setup_wall_s",
             "events_per_sec", "sim_ops_per_sec"}
for c in d["cells"]:
    missing = cell_keys - c.keys()
    assert not missing, f"cell missing {missing}"
    assert c["events_processed"] > 0, "empty replay"
s = d["summary"]
assert s["total_events"] == sum(c["events_processed"] for c in d["cells"])
print(f"bench smoke: {len(d['cells'])} cells, "
      f"{s['total_events']} events, JSON shape ok")
EOF
  rm -f "$out"
}

run_preset() {
  local preset="$1"
  echo "== configure ($preset) =="
  cmake --preset "$preset"
  echo "== build ($preset) =="
  cmake --build --preset "$preset" -j "$jobs"
  echo "== test ($preset) =="
  ctest --preset "$preset"
}

echo "== docs =="
tools/check_docs.sh

run_preset default
bench_smoke
if [[ "${1:-}" != "--fast" ]]; then
  run_preset asan-ubsan
  run_preset tsan
fi
echo "== all checks passed =="
