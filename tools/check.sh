#!/usr/bin/env bash
# Full pre-merge check: documentation consistency (tools/check_docs.sh),
# then build + test the normal config (plus perf_baseline and perf_scale
# smoke runs that validate the edm-bench-result/1 JSON shape and the
# streaming-replay RSS ceiling, plus an open-loop smoke asserting
# per-tenant p99 separation under overload and the workload JSON shape),
# then the asan-ubsan config plus fault, open-loop, and shards smokes
# (ext_failslow/ext_openloop --quick under the sanitizers, asserting
# detector quality and the edm-run-result/4 health JSON shape, plus a
# --shards 4 vs --shards 1 byte-identity check, a perf_shards --quick
# JSON-shape run, and a parallelism smoke: --flash-geometry=flat
# byte-identity plus ext_parallelism --quick queue-depth scaling), then
# the concurrency-sensitive tests (telemetry,
# thread pool, sweep runner, logging, sharded replay) under
# ThreadSanitizer (CMakePresets.json).  Any failure aborts.
#
#   tools/check.sh [--fast]   # --fast skips the sanitizer configs
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

# Smoke the throughput baseline: a --quick run must succeed and emit
# schema-valid JSON (docs/PERFORMANCE.md).  Catches bit-rot in the bench
# binary and its output contract without paying for a full grid.
bench_smoke() {
  echo "== bench smoke (perf_baseline --quick) =="
  local out
  out=$(mktemp)
  ./build/bench/perf_baseline --quick --out="$out" >/dev/null
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "edm-bench-result/1", d.get("schema")
assert d["cells"], "no cells"
cell_keys = {"trace", "policy", "num_osds", "events_processed",
             "completed_ops", "replay_wall_s", "setup_wall_s",
             "events_per_sec", "sim_ops_per_sec"}
for c in d["cells"]:
    missing = cell_keys - c.keys()
    assert not missing, f"cell missing {missing}"
    assert c["events_processed"] > 0, "empty replay"
s = d["summary"]
assert s["total_events"] == sum(c["events_processed"] for c in d["cells"])
print(f"bench smoke: {len(d['cells'])} cells, "
      f"{s['total_events']} events, JSON shape ok")
EOF
  rm -f "$out"
}

# Smoke the memory-scaling bench: a --quick run (one streaming cell at
# scale 2, own subprocess) must succeed, emit schema-valid JSON with the
# perf_scale cell fields, and stay under a generous RSS ceiling.  The
# ceiling (256 MiB) sits ~6x above the measured streaming footprint at
# this cell and well below the ~540 MiB a materialized run would need --
# it trips if streaming replay ever silently falls back to materialising
# the trace, while staying deaf to allocator noise.
scale_smoke() {
  echo "== scale smoke (perf_scale --quick) =="
  local out
  out=$(mktemp)
  ./build/bench/perf_scale --quick --out="$out" >/dev/null
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "edm-bench-result/1", d.get("schema")
assert d.get("bench") == "perf_scale", d.get("bench")
assert "provenance" in d, "missing provenance"
assert d["cells"], "no cells"
cell_keys = {"scale", "mode", "trace", "policy", "num_osds",
             "events_processed", "completed_ops", "replay_wall_s",
             "setup_wall_s", "events_per_sec", "peak_rss_bytes"}
ceiling = 256 * 1024 * 1024
for c in d["cells"]:
    missing = cell_keys - c.keys()
    assert not missing, f"cell missing {missing}"
    assert c["events_processed"] > 0, "empty replay"
    assert c["mode"] == "streaming", c["mode"]
    assert 0 < c["peak_rss_bytes"] < ceiling, (
        f"peak RSS {c['peak_rss_bytes']} outside (0, {ceiling}): "
        "streaming replay should stay tens-of-MiB at scale 2")
print(f"scale smoke: {len(d['cells'])} cells, RSS "
      f"{max(c['peak_rss_bytes'] for c in d['cells'])/2**20:.1f} MiB "
      f"< 256 MiB ceiling, JSON shape ok")
EOF
  rm -f "$out"
}

# Open-loop smoke: the multi-tenant SLO bench and the runner's workload
# JSON section.  Asserts the subsystem's headline property: per-tenant
# p99s separate under overload, which the closed-loop reference cannot
# express.
openloop_smoke() {
  local build_dir="${1:-build}"
  echo "== open-loop smoke (ext_openloop --quick, $build_dir) =="
  local out
  out=$(mktemp)
  "$build_dir/bench/ext_openloop" --quick --no-progress --out="$out" \
      >/dev/null
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "edm-bench-result/1", d.get("schema")
assert d.get("bench") == "ext_openloop", d.get("bench")
assert "provenance" in d, "missing provenance"
assert d["sweep"], "no sweep cells"
for cell in d["sweep"]:
    assert len(cell["tenants"]) == 2, "expected a two-tenant overlay"
    for t in cell["tenants"]:
        assert t["completed_ops"] > 0, f"{t['name']}: nothing completed"
        assert t["p99_response_us"] >= t["p50_response_us"] > 0
ref = d["closed_loop_reference"]
assert ref and not any(r["offered_load_expressible"] for r in ref)
a = d["assertions"]
assert a["tenant_p99_separated"], (
    f"per-tenant p99s did not separate under overload "
    f"(ratio {a['tenant_p99_separation']:.2f} at "
    f"{a['separation_multiplier']}x)")
print(f"open-loop smoke: {len(d['sweep'])} cells, tenant p99 separation "
      f"{a['tenant_p99_separation']:.2f}x at {a['separation_multiplier']}x "
      f"offered, JSON shape ok")
EOF
  "$build_dir/tools/edm_run" --scale=0.01 --arrival=poisson \
      --tenants=home02:2000:25,lair62:1000:50 --json >"$out"
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "edm-run-result/4", d.get("schema")
assert "p50_response_us" in d["summary"], "missing p50"
w = d["workload"]
workload_keys = {"open_loop", "offered_ops_per_sec", "arrivals",
                 "last_arrival_us", "peak_queue_depth", "tenants"}
missing = workload_keys - w.keys()
assert not missing, f"workload section missing {missing}"
assert w["open_loop"] == 1, "open loop not active"
assert len(w["tenants"]) == 2, "expected two tenants"
tenant_keys = {"name", "offered_ops_per_sec", "slo_us", "arrivals",
               "completed_ops", "slo_violations", "slo_violation_fraction",
               "mean_response_us", "p50_response_us", "p99_response_us",
               "p999_response_us"}
for t in w["tenants"]:
    missing = tenant_keys - t.keys()
    assert not missing, f"tenant {t.get('name')} missing {missing}"
    assert t["completed_ops"] == t["arrivals"], "dropped arrivals"
assert "provenance" in d, "edm_run --json should stamp provenance"
print(f"open-loop run smoke: {w['arrivals']} arrivals across "
      f"{len(w['tenants'])} tenants, peak queue {w['peak_queue_depth']}, "
      f"JSON shape ok")
EOF
  rm -f "$out"
}

# Fault smoke: the fail-slow bench and the runner's health JSON, under
# whichever build "$1" points at (the sanitizer build in the full check).
# The replay is deterministic, so the detector-quality assertions hold at
# any build type; the sanitizers are what this stage adds.
fault_smoke() {
  local build_dir="$1"
  echo "== fault smoke (ext_failslow --quick, $build_dir) =="
  local out
  out=$(mktemp)
  "$build_dir/bench/ext_failslow" --quick --out="$out" >/dev/null
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "edm-bench-result/1", d.get("schema")
assert d.get("bench") == "ext_failslow", d.get("bench")
assert "provenance" in d, "missing provenance"
assert d["detection"], "no detection entries"
for t in d["detection"]:
    assert t["false_positives"] == 0, (
        f"{t['trace']}: monitor flagged healthy OSDs {t['flagged_clean']}")
    assert t["flagged_detect"] == [t["injected_osd"]], (
        f"{t['trace']}: flagged {t['flagged_detect']}, "
        f"injected {t['injected_osd']}")
    assert t["p99_improvement"] >= 2.0, (
        f"{t['trace']}: mitigation recovered only "
        f"{t['p99_improvement']:.2f}x of the injected p99 damage")
print("fault smoke: " + ", ".join(
    f"{t['trace']} flagged=[{t['injected_osd']}] fp=0 "
    f"p99x{t['p99_improvement']:.2f}" for t in d["detection"]))
EOF
  "$build_dir/tools/edm_run" --scale=0.01 --health \
      --slow-at=3:0.2:8:0.05:4 --json >"$out"
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "edm-run-result/4", d.get("schema")
health_keys = {"enabled", "mitigated", "checks", "flag_events",
               "clear_events", "flagged_osds", "first_flagged_at_us",
               "quarantined_at_end", "hedged_reads", "hedge_wins",
               "hedge_redundant", "drain_triggers", "drain_planned",
               "drain_moved"}
missing = health_keys - d["health"].keys()
assert not missing, f"health section missing {missing}"
assert d["health"]["enabled"] == 1, "health not enabled"
assert d["health"]["checks"] > 0, "no health checks ran"
assert "p999_response_us" in d["summary"], "missing p999"
f = d["faults"]
assert {"slowdown_events", "recover_events",
        "stalls_injected"} <= f.keys(), "missing fail-slow counters"
assert f["slowdown_events"] == 1, f["slowdown_events"]
print(f"run smoke: edm-run-result/4, {d['health']['checks']} health "
      f"checks, {f['stalls_injected']} stalls, JSON shape ok")
EOF
  rm -f "$out"
}

# Shards smoke: the sharded-replay determinism contract, end to end
# through the CLI, under whichever build "$1" points at.  A --shards 4
# replay must emit byte-identical JSON to --shards 1 both on a calm
# replay and on a full monitor-mode run with tracing and time-series on
# (report, Chrome trace, and CSV bytes all compared —
# docs/internals/sim.md), and perf_shards --quick must emit schema-valid
# JSON with the two-grid cell fields, with monitor cells actually
# speculating (docs/PERFORMANCE.md "Parallel replay").
shards_smoke() {
  local build_dir="$1"
  echo "== shards smoke (--shards 4 identity + perf_shards --quick, $build_dir) =="
  local serial sharded
  serial=$(mktemp)
  sharded=$(mktemp)
  "$build_dir/tools/edm_run" --trace=home02 --scale=0.01 --json --quiet \
      >"$serial"
  "$build_dir/tools/edm_run" --trace=home02 --scale=0.01 --shards=4 \
      --json --quiet >"$sharded"
  if ! cmp -s "$serial" "$sharded"; then
    echo "shards smoke: --shards 4 JSON differs from --shards 1" >&2
    diff "$serial" "$sharded" >&2 || true
    rm -f "$serial" "$sharded"
    return 1
  fi
  echo "shards smoke: calm --shards 4 byte-identical to --shards 1"
  # Monitor mode used to forfeit speculation wholesale; now it is the
  # fine-grained calm certificate's proving ground.  Compare all three
  # output streams byte for byte.
  local tmpdir
  tmpdir=$(mktemp -d)
  local monitor_flags=(--trace=home02 --scale=0.02 --policy=cdf
                       --trigger=monitor --lambda=0.01 --adaptive
                       --health --mitigate --json --quiet)
  "$build_dir/tools/edm_run" "${monitor_flags[@]}" \
      --trace-out="$tmpdir/t1.json" --timeseries-out="$tmpdir/s1.csv" \
      >"$tmpdir/r1.json"
  "$build_dir/tools/edm_run" "${monitor_flags[@]}" --shards=4 \
      --trace-out="$tmpdir/t4.json" --timeseries-out="$tmpdir/s4.csv" \
      >"$tmpdir/r4.json"
  local stream
  for stream in r t s; do
    if ! cmp -s "$tmpdir/${stream}1"* "$tmpdir/${stream}4"*; then
      echo "shards smoke: monitor-mode --shards 4 stream '$stream'" \
           "differs from --shards 1" >&2
      diff "$tmpdir/${stream}1"* "$tmpdir/${stream}4"* >&2 || true
      rm -rf "$tmpdir" "$serial" "$sharded"
      return 1
    fi
  done
  rm -rf "$tmpdir"
  echo "shards smoke: monitor --shards 4 report/trace/time-series byte-identical"
  local out
  out=$(mktemp)
  "$build_dir/bench/perf_shards" --quick --out="$out" >/dev/null
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "edm-bench-result/1", d.get("schema")
assert d.get("bench") == "perf_shards", d.get("bench")
assert "provenance" in d, "missing provenance"
assert "hardware_threads" in d, "missing hardware_threads"
assert d["cells"], "no cells"
cell_keys = {"mode", "shards", "events_processed", "completed_ops",
             "spec_batches", "speculated_ios",
             "spec_forfeit_geometry", "spec_forfeit_faults",
             "spec_forfeit_failure", "spec_forfeit_rebuild",
             "spec_forfeit_trigger", "spec_excluded_osds",
             "spec_tainted_breaks", "replay_wall_s",
             "setup_wall_s", "events_per_sec", "speedup_vs_serial"}
counts = {}
for c in d["cells"]:
    missing = cell_keys - c.keys()
    assert not missing, f"cell missing {missing}"
    assert c["events_processed"] > 0, "empty replay"
    counts.setdefault(c["mode"], set()).add(
        (c["events_processed"], c["completed_ops"]))
assert set(counts) == {"calm", "monitor"}, f"modes: {set(counts)}"
for mode, seen in counts.items():
    assert len(seen) == 1, f"{mode}: shard counts disagree: {seen}"
sharded = [c for c in d["cells"] if c["shards"] > 1]
assert sharded and all(c["speculated_ios"] > 0 for c in sharded), (
    "sharded cells speculated nothing -- the shard workers are dead weight")
print(f"shards smoke: {len(d['cells'])} cells across "
      f"{len(counts)} modes, deterministic per mode, "
      "monitor cells speculate, JSON shape ok")
EOF
  rm -f "$serial" "$sharded" "$out"
}

# Parallelism smoke: the flash internal-parallelism model, end to end
# through the CLI and the ext_parallelism bench, under whichever build
# "$1" points at.  --flash-geometry=flat must be byte-identical to the
# default flat model (the 1x1x1 equivalence contract,
# docs/internals/flash.md), and ext_parallelism --quick must emit
# schema-valid JSON whose nvme cells scale with queue depth while the
# flat cells replay identically at every depth.
parallelism_smoke() {
  local build_dir="$1"
  echo "== parallelism smoke (1x1x1 identity + ext_parallelism --quick, $build_dir) =="
  local flat explicit
  flat=$(mktemp)
  explicit=$(mktemp)
  "$build_dir/tools/edm_run" --trace=home02 --scale=0.01 --json --quiet \
      >"$flat"
  "$build_dir/tools/edm_run" --trace=home02 --scale=0.01 \
      --flash-geometry=flat --json --quiet >"$explicit"
  if ! cmp -s "$flat" "$explicit"; then
    echo "parallelism smoke: --flash-geometry=flat JSON differs from default" >&2
    diff "$flat" "$explicit" >&2 || true
    rm -f "$flat" "$explicit"
    return 1
  fi
  echo "parallelism smoke: --flash-geometry=flat byte-identical to default"
  local out
  out=$(mktemp)
  "$build_dir/bench/ext_parallelism" --quick --out="$out" >/dev/null 2>&1
  python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "edm-bench-result/1", d.get("schema")
assert d.get("bench") == "ext_parallelism", d.get("bench")
assert "provenance" in d, "missing provenance"
assert d["cells"], "no cells"
cell_keys = {"geometry", "channels", "dies_per_channel", "planes_per_die",
             "bus_ctrl_us", "bus_data_us", "osd_qd", "completed_ops",
             "makespan_us", "throughput_ops_s", "speedup_vs_qd1"}
for c in d["cells"]:
    missing = cell_keys - c.keys()
    assert not missing, f"cell missing {missing}"
    assert c["completed_ops"] > 0, "empty replay"
flat = {c["makespan_us"] for c in d["cells"] if c["geometry"] == "flat"}
assert len(flat) == 1, f"flat geometry scaled with queue depth: {flat}"
nvme = [c for c in d["cells"] if c["geometry"] == "nvme"]
deepest = max(nvme, key=lambda c: c["osd_qd"])
assert deepest["speedup_vs_qd1"] > 1.1, (
    f"nvme speedup {deepest['speedup_vs_qd1']:.2f} at qd "
    f"{deepest['osd_qd']}: queue depth bought no throughput")
print(f"parallelism smoke: {len(d['cells'])} cells, flat invariant at "
      f"every depth, nvme x{deepest['speedup_vs_qd1']:.2f} at qd "
      f"{deepest['osd_qd']}, JSON shape ok")
EOF
  rm -f "$flat" "$explicit" "$out"
}

run_preset() {
  local preset="$1"
  echo "== configure ($preset) =="
  cmake --preset "$preset"
  echo "== build ($preset) =="
  cmake --build --preset "$preset" -j "$jobs"
  echo "== test ($preset) =="
  ctest --preset "$preset"
}

echo "== docs =="
tools/check_docs.sh

run_preset default
bench_smoke
scale_smoke
openloop_smoke build
if [[ "${1:-}" != "--fast" ]]; then
  run_preset asan-ubsan
  fault_smoke build-asan
  openloop_smoke build-asan
  shards_smoke build-asan
  parallelism_smoke build-asan
  run_preset tsan
else
  fault_smoke build
  shards_smoke build
  parallelism_smoke build
fi
echo "== all checks passed =="
