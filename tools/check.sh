#!/usr/bin/env bash
# Full pre-merge check: documentation consistency (tools/check_docs.sh),
# then build + test the normal config, then the asan-ubsan config, then
# the concurrency-sensitive tests (telemetry, thread pool, sweep runner,
# logging) under ThreadSanitizer (CMakePresets.json).  Any failure aborts.
#
#   tools/check.sh [--fast]   # --fast skips the sanitizer configs
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

run_preset() {
  local preset="$1"
  echo "== configure ($preset) =="
  cmake --preset "$preset"
  echo "== build ($preset) =="
  cmake --build --preset "$preset" -j "$jobs"
  echo "== test ($preset) =="
  ctest --preset "$preset"
}

echo "== docs =="
tools/check_docs.sh

run_preset default
if [[ "${1:-}" != "--fast" ]]; then
  run_preset asan-ubsan
  run_preset tsan
fi
echo "== all checks passed =="
