#!/usr/bin/env bash
# Documentation consistency gate (part of tools/check.sh):
#
#  1. every src/<subsystem> has a docs/internals page,
#  2. every --flag registered in bench/, tools/, src/util, src/runner is
#     documented in docs/MANUAL.md,
#  3. every intra-repo markdown link in *.md resolves to a real file.
#
#   tools/check_docs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
  echo "check_docs: $1" >&2
  fail=1
}

# -- 1. one internals page per src subsystem ------------------------------
# src/core is the paper's policy layer and is documented as policy.md.
page_for() {
  case "$1" in
    core) echo policy ;;
    *) echo "$1" ;;
  esac
}
for dir in src/*/; do
  sub=$(basename "$dir")
  page="docs/internals/$(page_for "$sub").md"
  [[ -f "$page" ]] || err "src/$sub has no internals page ($page missing)"
done
# The fault model lives inside src/sim but is a documented subsystem of
# its own.
[[ -f docs/internals/fault.md ]] || err "docs/internals/fault.md missing"

# Every internals page must have a row in the internals README index --
# a page nobody can discover from the index might as well not exist.
for page in docs/internals/*.md; do
  name=$(basename "$page")
  [[ "$name" == "README.md" ]] && continue
  grep -q "($name)" docs/internals/README.md ||
    err "docs/internals/README.md has no index entry for $name"
done

# The architecture overview and the performance methodology page must
# exist and be reachable from the entry-point docs (their intra-repo
# links are checked with every other markdown file in step 3).
[[ -f docs/ARCHITECTURE.md ]] || err "docs/ARCHITECTURE.md missing"
grep -q "ARCHITECTURE.md" README.md ||
  err "README.md does not link docs/ARCHITECTURE.md"
grep -q "ARCHITECTURE.md" docs/MANUAL.md ||
  err "docs/MANUAL.md does not link ARCHITECTURE.md"
[[ -f docs/PERFORMANCE.md ]] || err "docs/PERFORMANCE.md missing"
grep -q "PERFORMANCE.md" README.md ||
  err "README.md does not link docs/PERFORMANCE.md"
grep -q "PERFORMANCE.md" docs/MANUAL.md ||
  err "docs/MANUAL.md does not link PERFORMANCE.md"

# The model catalogue must exist and be reachable from every entry-point
# doc -- it is the map from "what does a run simulate" to the page and
# knobs, so burying it defeats its purpose.
[[ -f docs/MODELS.md ]] || err "docs/MODELS.md missing"
grep -q "MODELS.md" README.md ||
  err "README.md does not link docs/MODELS.md"
grep -q "MODELS.md" docs/ARCHITECTURE.md ||
  err "docs/ARCHITECTURE.md does not link MODELS.md"
grep -q "MODELS.md" docs/MANUAL.md ||
  err "docs/MANUAL.md does not link MODELS.md"

# -- 2. every registered flag is documented in the manual -----------------
flags=$(grep -rhoE '"--[a-z0-9-]+"' bench tools src/util src/runner 2>/dev/null |
  tr -d '"' | sort -u)
for flag in $flags; do
  [[ "$flag" == "--help" ]] && continue  # synthesised by FlagParser
  grep -q -- "\`$flag" docs/MANUAL.md ||
    err "flag $flag is not documented in docs/MANUAL.md"
done

# Belt and braces for the flash parallelism surface: every --flash-*
# flag the CLI registers must appear in the manual's edm_run table (the
# generic scan above finds string literals; this asserts the family is
# never renamed out from under the docs).
for flag in $(grep -rhoE '"--flash-[a-z0-9-]+"' tools 2>/dev/null |
  tr -d '"' | sort -u); do
  grep -q -- "\`$flag" docs/MANUAL.md ||
    err "flash flag $flag is not documented in docs/MANUAL.md"
done
[[ -n $(grep -rhoE '"--flash-[a-z0-9-]+"' tools 2>/dev/null) ]] ||
  err "no --flash-* flags registered in tools/ (expected --flash-geometry)"

# -- 3. intra-repo markdown links resolve ---------------------------------
while IFS= read -r md; do
  dir=$(dirname "$md")
  # extract link targets: [text](target)
  while IFS= read -r target; do
    # skip external links, pure anchors, and mail links
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target=${target%%#*}  # strip anchor
    [[ -z "$target" ]] && continue
    [[ -e "$dir/$target" ]] || err "$md links to missing file: $target"
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed 's/^](//; s/)$//')
done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*')

if [[ $fail -ne 0 ]]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: all documentation checks passed"
