// edm_run -- the command-line front end to the simulation stack.
//
// Runs one experiment cell and prints a report (text or JSON).  Supports
// the built-in Table I workload profiles or a user-supplied trace file
// (binary or text; see trace/text_io.h for the format).
//
// Usage:
//   edm_run [options]
//     --trace=<name>        workload profile (default home02)
//     --trace-file=<path>   replay a trace file instead (.bin or text)
//     --policy=<p>          baseline | cmt | hdf | cdf (default hdf)
//     --scale=<f>           profile scale (default 0.1)
//     --osds=<n>            cluster size (default 16)
//     --groups=<m>          SSD groups (default 4)
//     --clients=<n>         load generators (default osds/2)
//     --trigger=<t>         midpoint | monitor | none (default midpoint)
//     --lambda=<f>          wear-imbalance threshold (default 0.15)
//     --sigma=<f>           wear-model impact factor (default 0.28)
//     --utilization=<f>     max post-population utilization (default 0.76)
//     --channels=<n>        flash channels (default 1)
//     --separate-gc         enable the hot/cold-separating GC stream
//     --adaptive            online sigma calibration (monitor runs)
//     --fail-osd=<id>       inject an OSD failure mid-replay
//     --fail-at=<f>         failure point as a record fraction (default 0.5)
//     --json                JSON output (schema edm-run-result/1)
//     --quiet               summary only (no per-OSD table / timeline)
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/io.h"
#include "trace/text_io.h"

namespace {

struct Options {
  std::string trace = "home02";
  std::string trace_file;
  std::string policy = "hdf";
  double scale = 0.1;
  std::uint32_t osds = 16;
  std::uint32_t groups = 4;
  std::uint16_t clients = 0;
  std::string trigger = "midpoint";
  double lambda = 0.15;
  double sigma = 0.28;
  double utilization = 0.76;
  std::uint32_t channels = 1;
  bool separate_gc = false;
  bool adaptive = false;
  int fail_osd = -1;
  double fail_at = 0.5;
  bool json = false;
  bool quiet = false;
};

[[noreturn]] void usage(int code) {
  std::cerr <<
      "usage: edm_run [--trace=<name>|--trace-file=<path>] [--policy=<p>]\n"
      "               [--scale=<f>] [--osds=<n>] [--groups=<m>]\n"
      "               [--clients=<n>] [--trigger=midpoint|monitor|none]\n"
      "               [--lambda=<f>] [--sigma=<f>] [--utilization=<f>]\n"
      "               [--channels=<n>] [--separate-gc] [--adaptive]\n"
      "               [--json] [--quiet]\n";
  std::exit(code);
}

bool take(const std::string& arg, const char* key, std::string* out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Options parse(int argc, char** argv) {
  Options opt;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--separate-gc") {
      opt.separate_gc = true;
    } else if (arg == "--adaptive") {
      opt.adaptive = true;
    } else if (take(arg, "--trace", &value)) {
      opt.trace = value;
    } else if (take(arg, "--trace-file", &value)) {
      opt.trace_file = value;
    } else if (take(arg, "--policy", &value)) {
      opt.policy = value;
    } else if (take(arg, "--scale", &value)) {
      opt.scale = std::atof(value.c_str());
    } else if (take(arg, "--osds", &value)) {
      opt.osds = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (take(arg, "--groups", &value)) {
      opt.groups = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (take(arg, "--clients", &value)) {
      opt.clients = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (take(arg, "--trigger", &value)) {
      opt.trigger = value;
    } else if (take(arg, "--lambda", &value)) {
      opt.lambda = std::atof(value.c_str());
    } else if (take(arg, "--sigma", &value)) {
      opt.sigma = std::atof(value.c_str());
    } else if (take(arg, "--utilization", &value)) {
      opt.utilization = std::atof(value.c_str());
    } else if (take(arg, "--channels", &value)) {
      opt.channels = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (take(arg, "--fail-osd", &value)) {
      opt.fail_osd = std::atoi(value.c_str());
    } else if (take(arg, "--fail-at", &value)) {
      opt.fail_at = std::atof(value.c_str());
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(2);
    }
  }
  return opt;
}

edm::trace::Trace load_trace_any(const std::string& path) {
  // Binary traces start with the magic; fall back to the text parser.
  try {
    return edm::trace::load_trace_file(path);
  } catch (const std::runtime_error&) {
    return edm::trace::load_text_trace_file(path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    edm::sim::ExperimentConfig cfg;
    cfg.trace_name = opt.trace;
    cfg.scale = opt.scale;
    cfg.num_osds = opt.osds;
    cfg.num_groups = opt.groups;
    cfg.num_clients = opt.clients;
    cfg.policy = edm::core::policy_kind_from(opt.policy);
    cfg.policy_config.lambda = opt.lambda;
    cfg.policy_config.model =
        edm::core::WearModel(cfg.flash.pages_per_block, opt.sigma);
    cfg.target_max_utilization = opt.utilization;
    cfg.flash.num_channels = opt.channels;
    cfg.flash.separate_gc_stream = opt.separate_gc;
    cfg.sim.adaptive_sigma = opt.adaptive;
    cfg.sim.fail_osd = opt.fail_osd;
    cfg.sim.fail_at_fraction = opt.fail_at;
    if (opt.trigger == "monitor") {
      cfg.sim.trigger = edm::sim::MigrationTrigger::kMonitor;
      // The paper's 1-minute epoch assumes hours-long runs; scale it so a
      // reduced replay still gets regular monitor evaluations.
      cfg.sim.epoch_length_us = static_cast<edm::SimDuration>(
          std::max(0.5e6, 20e6 * opt.scale));
    } else if (opt.trigger == "none") {
      cfg.sim.trigger = edm::sim::MigrationTrigger::kNone;
    } else if (opt.trigger == "midpoint") {
      cfg.sim.trigger = edm::sim::MigrationTrigger::kForcedMidpoint;
    } else {
      std::cerr << "unknown trigger: " << opt.trigger << "\n";
      return 2;
    }

    edm::sim::RunResult result;
    if (!opt.trace_file.empty()) {
      const auto trace = load_trace_any(opt.trace_file);
      cfg.trace_name = trace.name;
      result = edm::sim::run_experiment(cfg, trace);
    } else {
      result = edm::sim::run_experiment(cfg);
    }

    if (opt.json) {
      edm::sim::write_json(result, std::cout);
    } else {
      edm::sim::write_report(result, std::cout, !opt.quiet, !opt.quiet);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "edm_run: " << e.what() << "\n";
    return 1;
  }
}
