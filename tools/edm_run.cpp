// edm_run -- the command-line front end to the simulation stack.
//
// Runs one experiment cell -- or, with --seeds=N, a deterministic sweep of
// N seed-derived replicas of it on --jobs workers -- and prints a report
// (text or JSON).  Supports the built-in Table I workload profiles or a
// user-supplied trace file (binary or text; see trace/text_io.h for the
// format).
//
// Usage:
//   edm_run [options]
//     --trace=<name>        workload profile (default home02)
//     --trace-file=<path>   replay a trace file instead (.bin or text)
//     --policy=<p>          baseline | cmt | hdf | cdf (default hdf)
//     --scale=<f>           profile scale (default 0.1)
//     --osds=<n>            cluster size (default 16)
//     --groups=<m>          SSD groups (default 4)
//     --clients=<n>         load generators (default osds/2)
//     --trigger=<t>         midpoint | monitor | none (default midpoint)
//     --lambda=<f>          wear-imbalance threshold (default 0.15)
//     --sigma=<f>           wear-model impact factor (default 0.28)
//     --utilization=<f>     max post-population utilization (default 0.76)
//     --channels=<n>        flash channels (default 1)
//     --flash-geometry=<g>  flat | sata | nvme | CxDxP internal-parallelism
//                           geometry (channels x dies x planes; the named
//                           presets also set bus delays)
//     --bus-delays=<c:d>    per-channel bus delays in us (ctrl:data);
//                           overrides a preset's bus timings
//     --osd-qd=<n>          concurrent requests dispatched into each
//                           parallel-geometry OSD (flat devices stay serial)
//     --separate-gc         enable the hot/cold-separating GC stream
//     --adaptive            online sigma calibration (monitor runs)
//     --fail-osd=<id>       inject an OSD failure mid-replay
//     --fail-at-fraction=<f> failure point as a record fraction (default 0.5)
//     --fail-at=<o:t>       schedule: fail OSD o at t simulated seconds
//     --rebuild-at=<o:t>    schedule: start rebuilding OSD o at t seconds
//     --slow-at=<o:t:f[:r:ms]> schedule: OSD o turns fail-slow at t seconds
//                           with service-time factor f (optionally stalling
//                           a fraction r of requests for ms milliseconds)
//     --recover-at=<o:t>    schedule: fail-slow OSD o recovers at t seconds
//     --transient-error-rate=<f> per-sub-request transient error probability
//     --fault-seed=<n>      seed of the stochastic fault streams
//     --health              enable the online fail-slow health monitor
//     --mitigate            hedged reads + quarantine-and-drain (implies
//                           --health)
//     --arrival=<k>         closed | poisson | fixed (default closed);
//                           open kinds switch to open-loop injection
//     --rate=<r>            offered load per tenant in ops/s (open loop)
//     --slo=<ms>            per-op response-time SLO in ms (default 100)
//     --burst=<d:p>         burst train: duty d in (0,1], period p seconds
//     --diurnal=<a:p>       diurnal curve: amplitude a in [0,1), period p s
//     --drift=<p[:s]>       popularity drift: rotate step s (default 1/16)
//                           of the hot set every p simulated seconds
//     --tenants=<specs>     comma-separated profile[:rate[:slo_ms[:scale]]]
//                           overlays (repeatable); default = one tenant
//                           from --trace
//     --arrival-seed=<n>    extra seed salt for the arrival draws
//     --trace-out=<path>    write a Chrome trace-event JSON (Perfetto)
//     --timeseries-out=<p>  write a per-OSD time-series CSV
//     --sample-interval=<s> sampling interval in simulated seconds
//     --seeds=<n>           run n seed-derived replicas as one sweep
//     --base-seed=<s>       base seed for the per-replica derivation
//     --jobs=<n>            sweep workers (0 = hardware threads, 1 = serial)
//     --shards=<n>          replay shard workers per run (1 = serial event
//                           loop; output is byte-identical at any value)
//     --json                JSON output (schema edm-run-result/4 with a
//                           build-provenance stamp; with --seeds>1,
//                           edm-sweep-result/1)
//     --quiet               summary only (no per-OSD table / timeline)
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/aggregate.h"
#include "runner/seed.h"
#include "runner/sweep.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/io.h"
#include "trace/text_io.h"
#include "util/flags.h"
#include "util/provenance.h"
#include "workload/tenant.h"

namespace {

struct Options {
  std::string trace = "home02";
  std::string trace_file;
  std::string policy = "hdf";
  double scale = 0.1;
  std::uint32_t osds = 16;
  std::uint32_t groups = 4;
  std::uint16_t clients = 0;
  std::string trigger = "midpoint";
  double lambda = 0.15;
  double sigma = 0.28;
  double utilization = 0.76;
  std::uint32_t channels = 1;
  std::string flash_geometry;
  std::string bus_delays;
  std::uint32_t osd_qd = 1;
  bool separate_gc = false;
  bool adaptive = false;
  std::int32_t fail_osd = -1;
  double fail_at_fraction = 0.5;
  std::vector<std::string> fail_at;
  std::vector<std::string> rebuild_at;
  std::vector<std::string> slow_at;
  std::vector<std::string> recover_at;
  double transient_error_rate = 0.0;
  std::uint32_t fault_seed = 0;
  bool health = false;
  bool mitigate = false;
  std::string arrival = "closed";
  double rate = 0.0;
  double slo_ms = 100.0;
  std::string burst;
  std::string diurnal;
  std::string drift;
  std::vector<std::string> tenants;
  std::uint32_t arrival_seed = 0;
  std::string trace_out;
  std::string timeseries_out;
  double sample_interval_s = 1.0;
  std::uint32_t seeds = 1;
  std::uint32_t base_seed = 0;
  std::uint32_t jobs = 0;
  std::uint32_t shards = 1;
  bool json = false;
  bool quiet = false;
};

edm::util::FlagParser make_parser(Options& opt) {
  edm::util::FlagParser parser;
  parser.add_string("--trace", &opt.trace, "workload profile name");
  parser.add_string("--trace-file", &opt.trace_file,
                    "replay a trace file instead (.bin or text)");
  parser.add_string("--policy", &opt.policy, "baseline | cmt | hdf | cdf");
  parser.add_double("--scale", &opt.scale, "profile scale (1.0 = paper-size)");
  parser.add_uint32("--osds", &opt.osds, "cluster size");
  parser.add_uint32("--groups", &opt.groups, "SSD groups");
  parser.add_uint16("--clients", &opt.clients,
                    "load generators (0 = osds/2)");
  parser.add_string("--trigger", &opt.trigger, "midpoint | monitor | none");
  parser.add_double("--lambda", &opt.lambda, "wear-imbalance threshold");
  parser.add_double("--sigma", &opt.sigma, "wear-model impact factor");
  parser.add_double("--utilization", &opt.utilization,
                    "max post-population utilization");
  parser.add_uint32("--channels", &opt.channels, "flash channels");
  parser.add_string("--flash-geometry", &opt.flash_geometry,
                    "flat | sata | nvme | CxDxP (channels x dies x planes)");
  parser.add_string("--bus-delays", &opt.bus_delays,
                    "per-channel bus delays in us (ctrl:data)");
  parser.add_uint32("--osd-qd", &opt.osd_qd,
                    "concurrent requests per parallel-geometry OSD");
  parser.add_bool("--separate-gc", &opt.separate_gc,
                  "enable the hot/cold-separating GC stream");
  parser.add_bool("--adaptive", &opt.adaptive,
                  "online sigma calibration (monitor runs)");
  parser.add_int32("--fail-osd", &opt.fail_osd,
                   "inject an OSD failure mid-replay (-1 = off)");
  parser.add_double("--fail-at-fraction", &opt.fail_at_fraction,
                    "failure point as a record fraction (with --fail-osd)");
  parser.add_string_list("--fail-at", &opt.fail_at,
                         "schedule osd:t(s) device failure (repeatable)");
  parser.add_string_list("--rebuild-at", &opt.rebuild_at,
                         "schedule osd:t(s) online rebuild (repeatable)");
  parser.add_string_list(
      "--slow-at", &opt.slow_at,
      "schedule osd:t(s):factor[:stall_rate:stall_ms] fail-slow onset");
  parser.add_string_list("--recover-at", &opt.recover_at,
                         "schedule osd:t(s) fail-slow recovery (repeatable)");
  parser.add_double("--transient-error-rate", &opt.transient_error_rate,
                    "per-sub-request transient error probability");
  parser.add_uint32("--fault-seed", &opt.fault_seed,
                    "seed of the stochastic fault streams (0 = default)");
  parser.add_bool("--health", &opt.health,
                  "enable the online fail-slow health monitor");
  parser.add_bool("--mitigate", &opt.mitigate,
                  "hedged reads + quarantine-and-drain (implies --health)");
  parser.add_string("--arrival", &opt.arrival,
                    "closed | poisson | fixed (open-loop injection)");
  parser.add_double("--rate", &opt.rate,
                    "offered load per tenant in ops/s (open loop)");
  parser.add_double("--slo", &opt.slo_ms,
                    "per-op response-time SLO in ms (open loop)");
  parser.add_string("--burst", &opt.burst,
                    "burst train duty:period_s (open loop)");
  parser.add_string("--diurnal", &opt.diurnal,
                    "diurnal curve amplitude:period_s (open loop)");
  parser.add_string("--drift", &opt.drift,
                    "popularity drift period_s[:step] (open loop)");
  parser.add_string_list(
      "--tenants", &opt.tenants,
      "comma-separated profile[:rate[:slo_ms[:scale]]] overlays");
  parser.add_uint32("--arrival-seed", &opt.arrival_seed,
                    "extra seed salt for the arrival draws");
  parser.add_string("--trace-out", &opt.trace_out,
                    "write Chrome trace-event JSON (Perfetto-loadable)");
  parser.add_string("--timeseries-out", &opt.timeseries_out,
                    "write per-OSD time-series CSV");
  parser.add_double("--sample-interval", &opt.sample_interval_s,
                    "time-series sampling interval in simulated seconds");
  parser.add_uint32("--seeds", &opt.seeds,
                    "run this many seed-derived replicas as one sweep");
  parser.add_uint32("--base-seed", &opt.base_seed,
                    "base seed for the per-replica derivation");
  parser.add_uint32("--jobs", &opt.jobs,
                    "sweep workers (0 = hardware threads, 1 = serial)");
  parser.add_uint32("--shards", &opt.shards,
                    "replay shard workers per run (1 = serial event loop)");
  parser.add_bool("--json", &opt.json, "JSON output (schema edm-run-result/4)");
  parser.add_bool("--quiet", &opt.quiet,
                  "summary only (no per-OSD table / timeline)");
  return parser;
}

Options parse(int argc, char** argv) {
  Options opt;
  edm::util::FlagParser parser = make_parser(opt);
  switch (parser.parse(argc, argv)) {
    case edm::util::FlagParser::Result::kOk:
      break;
    case edm::util::FlagParser::Result::kHelp:
      parser.print_usage(std::cerr, argv[0]);
      std::exit(0);
    case edm::util::FlagParser::Result::kError:
      std::cerr << parser.error() << "\n";
      parser.print_usage(std::cerr, argv[0]);
      std::exit(2);
  }
  return opt;
}

/// Splits "a:b:c" on `delim` (':' for event specs, 'x' for geometries).
std::vector<std::string> split_fields(const std::string& spec,
                                      char delim = ':') {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (true) {
    const auto pos = spec.find(delim, start);
    out.push_back(spec.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

double parse_num(const std::string& flag, const std::string& field) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    throw std::invalid_argument(flag + ": bad number '" + field + "'");
  }
  return v;
}

/// Parses one scheduled-event spec "osd:t(s)[:extras...]" and appends the
/// event to `plan`.  `max_fields` bounds the accepted arity per kind.
void add_fault_event(edm::sim::FaultPlan& plan, const std::string& flag,
                     const std::string& spec,
                     edm::sim::FaultEvent::Kind kind, std::size_t max_fields) {
  const std::vector<std::string> f = split_fields(spec);
  if (f.size() < 2 || f.size() > max_fields) {
    throw std::invalid_argument(flag + ": expected '" + spec +
                                "' in the form osd:t" +
                                (max_fields > 2 ? ":factor[:rate:ms]" : ""));
  }
  const auto osd = static_cast<edm::OsdId>(parse_num(flag, f[0]));
  const auto at = static_cast<edm::SimTime>(parse_num(flag, f[1]) * 1e6);
  switch (kind) {
    case edm::sim::FaultEvent::Kind::kFail:
      plan.fail(osd, at);
      break;
    case edm::sim::FaultEvent::Kind::kRebuild:
      plan.rebuild(osd, at);
      break;
    case edm::sim::FaultEvent::Kind::kSlowdown: {
      const double factor = f.size() > 2 ? parse_num(flag, f[2]) : 2.0;
      const double rate = f.size() > 3 ? parse_num(flag, f[3]) : 0.0;
      const auto stall_us = static_cast<edm::SimDuration>(
          (f.size() > 4 ? parse_num(flag, f[4]) : 0.0) * 1e3);
      plan.slow(osd, at, factor, rate, stall_us);
      break;
    }
    case edm::sim::FaultEvent::Kind::kRecover:
      plan.recover(osd, at);
      break;
  }
}

/// Builds the FaultPlan from the command-line event specs.  Events are
/// sorted by time (stable, so same-time specs keep command-line order)
/// because FaultPlan::validate rejects unsorted schedules.
edm::sim::FaultPlan fault_plan_from(const Options& opt) {
  edm::sim::FaultPlan plan;
  using Kind = edm::sim::FaultEvent::Kind;
  for (const auto& s : opt.fail_at) {
    add_fault_event(plan, "--fail-at", s, Kind::kFail, 2);
  }
  for (const auto& s : opt.rebuild_at) {
    add_fault_event(plan, "--rebuild-at", s, Kind::kRebuild, 2);
  }
  for (const auto& s : opt.slow_at) {
    add_fault_event(plan, "--slow-at", s, Kind::kSlowdown, 5);
  }
  for (const auto& s : opt.recover_at) {
    add_fault_event(plan, "--recover-at", s, Kind::kRecover, 2);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const edm::sim::FaultEvent& a,
                      const edm::sim::FaultEvent& b) { return a.at < b.at; });
  plan.transient_error_rate = opt.transient_error_rate;
  if (opt.fault_seed != 0) plan.seed = opt.fault_seed;
  return plan;
}

edm::trace::Trace load_trace_any(const std::string& path) {
  // Binary traces start with the magic; fall back to the text parser.
  try {
    return edm::trace::load_trace_file(path);
  } catch (const std::runtime_error&) {
    return edm::trace::load_text_trace_file(path);
  }
}

/// Builds the open-loop config from --arrival/--rate/--burst/--tenants.
/// Returns a disabled config (empty tenants) for --arrival=closed.
edm::workload::OpenLoopConfig open_loop_from(const Options& opt) {
  namespace wl = edm::workload;
  edm::workload::OpenLoopConfig open_loop;
  const wl::ArrivalKind kind = wl::arrival_kind_from(opt.arrival);
  if (kind == wl::ArrivalKind::kClosed) {
    if (!opt.tenants.empty()) {
      throw std::invalid_argument(
          "--tenants needs an open arrival process "
          "(--arrival=poisson|fixed)");
    }
    return open_loop;
  }
  // Defaults every tenant spec inherits; per-tenant fields override.
  wl::TenantSpec defaults;
  defaults.profile = opt.trace;
  defaults.rate_ops_per_sec = opt.rate;
  defaults.slo_ms = opt.slo_ms;
  defaults.arrival = kind;
  if (!opt.burst.empty()) {
    const auto f = split_fields(opt.burst);
    if (f.size() != 2) {
      throw std::invalid_argument("--burst: expected duty:period_s");
    }
    defaults.burst.duty = parse_num("--burst", f[0]);
    defaults.burst.period_s = parse_num("--burst", f[1]);
  }
  if (!opt.diurnal.empty()) {
    const auto f = split_fields(opt.diurnal);
    if (f.size() != 2) {
      throw std::invalid_argument("--diurnal: expected amplitude:period_s");
    }
    defaults.diurnal.amplitude = parse_num("--diurnal", f[0]);
    defaults.diurnal.period_s = parse_num("--diurnal", f[1]);
  }
  if (!opt.drift.empty()) {
    const auto f = split_fields(opt.drift);
    if (f.empty() || f.size() > 2) {
      throw std::invalid_argument("--drift: expected period_s[:step]");
    }
    defaults.drift.period_s = parse_num("--drift", f[0]);
    if (f.size() > 1) defaults.drift.step = parse_num("--drift", f[1]);
  }
  if (opt.tenants.empty()) {
    open_loop.tenants.push_back(defaults);
  } else {
    for (const std::string& flag_value : opt.tenants) {
      std::string::size_type start = 0;
      while (start <= flag_value.size()) {
        const auto comma = flag_value.find(',', start);
        const std::string spec =
            flag_value.substr(start, comma - start);
        if (!spec.empty()) {
          open_loop.tenants.push_back(wl::parse_tenant_spec(spec, defaults));
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
  }
  open_loop.arrival_seed = opt.arrival_seed;
  return open_loop;
}

/// Applies --flash-geometry/--bus-delays/--osd-qd.  Named presets (SATA- vs
/// NVMe-class internal parallelism) set both the geometry and bus delays;
/// an explicit --bus-delays always wins.  "flat" is the paper's 1x1x1
/// serial model -- with zero bus delays it is byte-identical to omitting
/// the flag entirely.
void apply_flash_geometry(edm::sim::ExperimentConfig& cfg,
                          const Options& opt) {
  if (!opt.flash_geometry.empty()) {
    if (opt.flash_geometry == "flat") {
      cfg.flash.geometry = edm::flash::FlashGeometry{};
    } else if (opt.flash_geometry == "sata") {
      cfg.flash.geometry = edm::flash::FlashGeometry{4, 2, 1};
      cfg.flash.bus_ctrl_us = 5;
      cfg.flash.bus_data_us = 40;
    } else if (opt.flash_geometry == "nvme") {
      cfg.flash.geometry = edm::flash::FlashGeometry{8, 4, 2};
      cfg.flash.bus_ctrl_us = 2;
      cfg.flash.bus_data_us = 10;
    } else {
      const auto f = split_fields(opt.flash_geometry, 'x');
      if (f.size() != 3) {
        throw std::invalid_argument(
            "--flash-geometry: expected flat|sata|nvme or CxDxP "
            "(e.g. 4x2x2)");
      }
      cfg.flash.geometry.channels =
          static_cast<std::uint32_t>(parse_num("--flash-geometry", f[0]));
      cfg.flash.geometry.dies_per_channel =
          static_cast<std::uint32_t>(parse_num("--flash-geometry", f[1]));
      cfg.flash.geometry.planes_per_die =
          static_cast<std::uint32_t>(parse_num("--flash-geometry", f[2]));
    }
  }
  if (!opt.bus_delays.empty()) {
    const auto f = split_fields(opt.bus_delays);
    if (f.size() != 2) {
      throw std::invalid_argument("--bus-delays: expected ctrl_us:data_us");
    }
    cfg.flash.bus_ctrl_us =
        static_cast<edm::SimDuration>(parse_num("--bus-delays", f[0]));
    cfg.flash.bus_data_us =
        static_cast<edm::SimDuration>(parse_num("--bus-delays", f[1]));
  }
  cfg.sim.osd_queue_depth = opt.osd_qd;
}

edm::runner::TelemetrySinks sinks_from(const Options& opt) {
  edm::runner::TelemetrySinks sinks;
  sinks.trace_out = opt.trace_out;
  sinks.timeseries_out = opt.timeseries_out;
  sinks.sample_interval_s = opt.sample_interval_s;
  return sinks;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    edm::sim::ExperimentConfig cfg;
    cfg.trace_name = opt.trace;
    cfg.scale = opt.scale;
    cfg.num_osds = opt.osds;
    cfg.num_groups = opt.groups;
    cfg.num_clients = opt.clients;
    cfg.policy = edm::core::policy_kind_from(opt.policy);
    cfg.policy_config.lambda = opt.lambda;
    cfg.policy_config.model =
        edm::core::WearModel(cfg.flash.pages_per_block, opt.sigma);
    cfg.target_max_utilization = opt.utilization;
    cfg.flash.num_channels = opt.channels;
    apply_flash_geometry(cfg, opt);
    cfg.flash.separate_gc_stream = opt.separate_gc;
    cfg.sim.adaptive_sigma = opt.adaptive;
    cfg.sim.shards = opt.shards;
    cfg.sim.fail_osd = opt.fail_osd;
    cfg.sim.fail_at_fraction = opt.fail_at_fraction;
    cfg.sim.faults = fault_plan_from(opt);
    // Fail fast on a malformed plan, before the (expensive) cluster build;
    // the simulator re-validates as part of SimConfig::validate.
    cfg.sim.faults.validate(opt.osds);
    cfg.sim.health.enabled = opt.health || opt.mitigate;
    cfg.sim.health.mitigate = opt.mitigate;
    cfg.open_loop = open_loop_from(opt);
    if (cfg.open_loop.enabled() && !opt.trace_file.empty()) {
      std::cerr << "edm_run: open-loop mode generates per-tenant streams "
                   "and cannot replay --trace-file\n";
      return 2;
    }
    edm::runner::apply_telemetry(cfg, sinks_from(opt));
    if (opt.trigger == "monitor") {
      cfg.sim.trigger = edm::sim::MigrationTrigger::kMonitor;
      // The paper's 1-minute epoch assumes hours-long runs; scale it so a
      // reduced replay still gets regular monitor evaluations.
      cfg.sim.epoch_length_us = static_cast<edm::SimDuration>(
          std::max(0.5e6, 20e6 * opt.scale));
    } else if (opt.trigger == "none") {
      cfg.sim.trigger = edm::sim::MigrationTrigger::kNone;
    } else if (opt.trigger == "midpoint") {
      cfg.sim.trigger = edm::sim::MigrationTrigger::kForcedMidpoint;
    } else {
      std::cerr << "unknown trigger: " << opt.trigger << "\n";
      return 2;
    }

    if (opt.seeds > 1) {
      // Sweep mode: N seed-derived replicas of the cell, one run per
      // worker, aggregated in replica order (deterministic at any --jobs).
      if (!opt.trace_file.empty()) {
        std::cerr << "edm_run: --seeds requires a generated workload "
                     "(--trace), not --trace-file\n";
        return 2;
      }
      edm::runner::SweepOptions sweep;
      sweep.jobs = opt.jobs;
      sweep.shards_per_run = opt.shards;
      sweep.derive_seeds = true;
      sweep.base_seed = opt.base_seed;
      sweep.label = "edm_run";
      sweep.progress = opt.quiet ? nullptr : &std::cerr;
      sweep.sinks = sinks_from(opt);
      const auto results = edm::runner::run_sweep(
          std::vector<edm::sim::ExperimentConfig>(opt.seeds, cfg), sweep);
      if (opt.json) {
        edm::runner::write_sweep_json(results, std::cout);
      } else {
        for (std::size_t i = 0; i < results.size(); ++i) {
          std::cout << "== replica " << i << " (seed "
                    << edm::runner::derive_seed(opt.base_seed, i) << ") ==\n";
          edm::sim::write_report(results[i], std::cout, false, false);
        }
        edm::runner::write_sweep_csv(results, std::cout);
      }
      return 0;
    }

    edm::sim::RunResult result;
    if (!opt.trace_file.empty()) {
      const auto trace = load_trace_any(opt.trace_file);
      cfg.trace_name = trace.name;
      result = edm::sim::run_experiment(cfg, trace);
    } else {
      result = edm::sim::run_experiment(cfg);
    }

    edm::runner::write_run_outputs(result, sinks_from(opt), 0, 1);
    if (opt.json) {
      // Single-run JSON is stamped with build provenance so committed
      // results are as attributable as bench output (EDM_GIT_COMMIT is
      // picked up from the environment when set).
      const edm::util::Provenance prov = edm::util::collect_provenance();
      edm::sim::write_json(result, std::cout, &prov);
    } else {
      edm::sim::write_report(result, std::cout, !opt.quiet, !opt.quiet);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "edm_run: " << e.what() << "\n";
    return 1;
  }
}
